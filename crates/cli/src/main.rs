//! `claire-cli` — command-line front-end for the CLAIRE framework.
//!
//! See `claire-cli help` for usage; every command is also available as
//! a library call through the `claire-core` façade.

mod args;
mod serve;
mod summary;

use args::{
    extract_cache_dir, extract_degrade, extract_legacy_flow, extract_metrics_json, extract_search,
    extract_threads, extract_trace_out, parse_args, CliSearch, Command, USAGE,
};
use claire_core::{
    paper_table3_subsets, ChipletLibrary, Claire, ClaireError, ClaireOptions, Degradation, Engine,
    RobustnessPolicy, RunConfig, SearchPolicy, SubsetStrategy, TelemetryOptions, TrainOutput,
    WeightScale,
};
use claire_model::parse::{parse_model, InputShape, ParseOptions};
use claire_model::{zoo, Model, ModelClass};
use std::path::PathBuf;
use summary::{CustomSummary, FlowSummary, TrainSummary};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (degrade, argv) = extract_degrade(&argv);
    let (legacy_flow, argv) = extract_legacy_flow(&argv);
    let parsed = extract_trace_out(&argv).and_then(|(trace, rest)| {
        let (metrics, rest) = extract_metrics_json(&rest)?;
        let (cache_dir, rest) = extract_cache_dir(&rest)?;
        let (threads, rest) = extract_threads(&rest)?;
        let (search, rest) = extract_search(&rest)?;
        Ok((
            parse_args(&rest)?,
            threads,
            trace,
            metrics,
            cache_dir,
            search,
        ))
    });
    let code = match parsed {
        Ok((cmd, threads, trace, metrics, cache_dir, search)) => {
            let globals = Globals {
                threads,
                degrade,
                legacy_flow,
                search,
                cache_dir,
                telemetry: TelemetryOptions {
                    trace_out: trace.map(PathBuf::from),
                    metrics_out: metrics.map(PathBuf::from),
                },
            };
            run(cmd, &globals)
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Maps each [`ClaireError`] variant to a distinct non-zero exit code
/// (documented in [`USAGE`]), so scripts can branch on the failure
/// class without scraping stderr.
fn exit_code(e: &ClaireError) -> i32 {
    match e {
        ClaireError::EmptyAlgorithmSet => 3,
        ClaireError::NoFeasibleConfiguration { .. } => 4,
        ClaireError::ChipletAreaUnsatisfiable { .. } => 5,
        ClaireError::IncompleteCoverage { .. } => 6,
        ClaireError::WorkerPanic { .. } => 7,
        ClaireError::NonFiniteMetric { .. } => 8,
        ClaireError::InvalidInput { .. } => 9,
        ClaireError::NoRoute { .. } => 10,
        ClaireError::Internal { .. } => 11,
        ClaireError::SnapshotInvalid { .. } => 12,
        ClaireError::Overloaded { .. } => 13,
        ClaireError::DeadlineExceeded { .. } => 14,
    }
}

/// Builds the engine a command runs on: tracing armed exactly when a
/// trace export path is set (mirrors the façade's internal policy).
fn engine_for(claire: &Claire) -> Engine {
    Engine::for_space(&claire.options().space)
        .with_tracing(claire.options().telemetry.trace_out.is_some())
}

/// Loads the warm-state snapshot (if `--cache-dir` names one) into
/// `engine`. A corrupt or incompatible snapshot degrades to a cold
/// start with a warning — it never fails the run, and the staged
/// validation guarantees the engine is untouched.
fn load_warm(claire: &Claire, engine: &Engine) {
    if let Err(e) = claire.load_warm_state(engine) {
        eprintln!("warning: {e}; starting cold");
    }
}

/// Saves the warmed memo tiers back to `--cache-dir` after a
/// successful run. A write failure costs only the warm start of the
/// next run, so it warns instead of failing.
fn save_warm(claire: &Claire, engine: &Engine) {
    if let Err(e) = claire.save_warm_state(engine) {
        eprintln!("warning: failed to save warm state: {e}");
    }
}

/// Prints a pipeline error to stderr and returns its exit code.
fn fail(e: &ClaireError) -> i32 {
    eprintln!("error: {e}");
    exit_code(e)
}

/// Flags a degraded (constraint-relaxed) result on stderr; the exit
/// code stays 0 — the run produced a usable configuration.
fn warn_degraded(subject: &str, d: Option<&Degradation>) {
    if let Some(d) = d {
        eprintln!("warning: {subject}: {d}");
    }
}

fn warn_train(out: &TrainOutput) {
    warn_degraded("generic C_g", out.generic_degradation.as_ref());
    for c in &out.customs {
        warn_degraded(c.model.name(), c.degradation.as_ref());
    }
    for l in &out.libraries {
        warn_degraded(&l.config.name, l.degradation.as_ref());
    }
}

/// The command-agnostic options stripped from argv before command
/// parsing — every command accepts all of them.
struct Globals {
    threads: Option<usize>,
    degrade: bool,
    legacy_flow: bool,
    search: Option<CliSearch>,
    cache_dir: Option<String>,
    telemetry: TelemetryOptions,
}

/// Maps the dependency-free CLI search policy onto the core's.
fn search_policy(search: Option<CliSearch>) -> SearchPolicy {
    match search {
        None | Some(CliSearch::Exhaustive) => SearchPolicy::Exhaustive,
        Some(CliSearch::SuccessiveHalving { seed, budget }) => SearchPolicy::SuccessiveHalving {
            seed,
            eta: 2,
            budget,
        },
    }
}

fn options(
    paper_subsets: bool,
    threshold: Option<f64>,
    config: Option<&str>,
    g: &Globals,
) -> Result<ClaireOptions, String> {
    let mut opts = match config {
        Some(path) => RunConfig::load(path)
            .map_err(|e| e.to_string())?
            .into_options(),
        None => ClaireOptions::default(),
    };
    if paper_subsets {
        opts.subsets = SubsetStrategy::Fixed(paper_table3_subsets());
    } else if let Some(t) = threshold {
        opts.subsets = SubsetStrategy::WeightedJaccard {
            threshold: t,
            scale: WeightScale::Log,
        };
    }
    // A --threads flag beats the config file's knob.
    if g.threads.is_some() {
        opts.space.threads = g.threads;
    }
    if g.degrade {
        opts.policy = RobustnessPolicy::Degrade;
    }
    // The legacy recursive flow is opt-in; the flat execution plan is
    // the default (bit-identical either way).
    if g.legacy_flow {
        opts.legacy_flow = true;
    }
    opts.search = search_policy(g.search);
    opts.telemetry = g.telemetry.clone();
    opts.cache_dir = g.cache_dir.as_ref().map(PathBuf::from);
    Ok(opts)
}

fn run(cmd: Command, g: &Globals) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::Models { extended } => {
            println!("training set (Table I):");
            for m in zoo::training_set() {
                describe(&m);
            }
            println!("test set:");
            for m in zoo::test_set() {
                describe(&m);
            }
            if extended {
                println!("extended test set:");
                for m in zoo::extended_test_set() {
                    describe(&m);
                }
            }
            0
        }
        Command::InitConfig { path } => {
            let cfg = RunConfig::default();
            match cfg.save(&path) {
                Ok(()) => {
                    println!("wrote default configuration to {path}");
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Custom {
            model,
            json,
            config,
        } => {
            let Some(m) = zoo::by_name(&model) else {
                eprintln!("error: unknown model `{model}` (see `claire-cli models --extended`)");
                return 2;
            };
            let opts = match options(false, None, config.as_deref(), g) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let claire = Claire::new(opts);
            let engine = engine_for(&claire);
            load_warm(&claire, &engine);
            match claire.custom_for_with_engine(&m, &engine) {
                Ok(custom) => {
                    if let Err(e) = claire.export_telemetry(&engine) {
                        return fail(&e);
                    }
                    save_warm(&claire, &engine);
                    warn_degraded(custom.model.name(), custom.degradation.as_ref());
                    let s = CustomSummary::from(&custom);
                    if json {
                        println!("{}", serde_json::to_string_pretty(&s).expect("serialise"));
                    } else {
                        println!("custom configuration for {}:", s.model);
                        println!("  hardware: {}", s.hardware);
                        for ch in &s.chiplets {
                            println!(
                                "  {} ({:.1} mm^2): {}",
                                ch.name,
                                ch.area_mm2,
                                ch.classes.join(", ")
                            );
                        }
                        println!(
                            "  {:.3} ms | {:.3} mJ | {:.1} mm^2 | {:.3} W/mm^2",
                            s.ppa.latency_ms,
                            s.ppa.energy_mj,
                            s.ppa.area_mm2,
                            s.ppa.power_density_w_mm2
                        );
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Command::Train {
            paper_subsets,
            threshold,
            json,
            config,
        } => {
            let opts = match options(paper_subsets, threshold, config.as_deref(), g) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let claire = Claire::new(opts);
            let engine = engine_for(&claire);
            load_warm(&claire, &engine);
            match claire.train_with_engine(&zoo::training_set(), &engine) {
                Ok(out) => {
                    if let Err(e) = claire.export_telemetry(&engine) {
                        return fail(&e);
                    }
                    save_warm(&claire, &engine);
                    warn_train(&out);
                    let s = TrainSummary::from(&out);
                    if json {
                        println!("{}", serde_json::to_string_pretty(&s).expect("serialise"));
                    } else {
                        print_train(&s);
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Command::Flow {
            paper_subsets,
            extended,
            json,
        } => {
            let opts = match options(paper_subsets, None, None, g) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let claire = Claire::new(opts);
            // One explicit engine for both phases, so a --trace-out
            // export covers all six flow stages in a single trace and
            // a --cache-dir snapshot captures both phases' tiers.
            let engine = engine_for(&claire);
            load_warm(&claire, &engine);
            let train = match claire.train_with_engine(&zoo::training_set(), &engine) {
                Ok(t) => {
                    warn_train(&t);
                    t
                }
                Err(e) => return fail(&e),
            };
            let mut tests = zoo::test_set();
            if extended {
                tests.extend(zoo::extended_test_set());
            }
            match claire.evaluate_test_with_engine(&train, &tests, &engine) {
                Ok(test) => {
                    if let Err(e) = claire.export_telemetry(&engine) {
                        return fail(&e);
                    }
                    save_warm(&claire, &engine);
                    let flow = FlowSummary::new(&train, &test);
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&flow).expect("serialise")
                        );
                    } else {
                        print_train(&flow.train);
                        println!("test deployment:");
                        for t in &flow.tests {
                            println!(
                                "  {:16} -> {:5}  coverage {:>4.0}%  U_k {:.3}  U_g {:.3}",
                                t.model,
                                t.assigned.as_deref().unwrap_or("-"),
                                t.coverage * 100.0,
                                t.utilization_library,
                                t.utilization_generic
                            );
                        }
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Command::Serve {
            config,
            listen,
            queue,
            io_timeout_ms,
            checkpoint_ms,
            serve_faults,
            event_log,
        } => {
            let opts = match options(false, None, config.as_deref(), g) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            serve::run(
                opts,
                &serve::ServeSettings {
                    listen,
                    queue,
                    io_timeout_ms,
                    checkpoint_ms,
                    serve_faults,
                    event_log,
                },
            )
        }
        Command::Describe { model } => {
            let Some(m) = zoo::by_name(&model) else {
                eprintln!("error: unknown model `{model}`");
                return 2;
            };
            println!("{} ({})", m.name(), m.class());
            println!(
                "  {} layers | {:.2} GMACs | {:.2} M params | {:.1} MB activations | {:.1} MACs/B",
                m.layer_count(),
                m.macs() as f64 / 1e9,
                m.param_count() as f64 / 1e6,
                m.activation_bytes() as f64 / 1e6,
                m.arithmetic_intensity()
            );
            println!("  layer classes:");
            for (class, n) in m.op_class_counts() {
                println!("    {:18} x{n}", class.label());
            }
            println!("  top edges:");
            let mut combos: Vec<_> = m.edge_combination_counts().into_iter().collect();
            combos.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for ((a, b), n) in combos.into_iter().take(5) {
                println!("    {a}-{b} x{n}");
            }
            0
        }
        Command::ExportLibrary {
            path,
            paper_subsets,
            threshold,
        } => {
            let opts = match options(paper_subsets, threshold, None, g) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let nre = opts.nre;
            let claire = Claire::new(opts);
            let train = match claire.train(&zoo::training_set()) {
                Ok(t) => {
                    warn_train(&t);
                    t
                }
                Err(e) => return fail(&e),
            };
            let lib = ChipletLibrary::from_training("claire-library", &train, nre);
            match lib.save(&path) {
                Ok(()) => {
                    println!(
                        "wrote library with {} configurations to {path}",
                        lib.entries.len()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Deploy {
            model,
            library,
            json,
        } => {
            let Some(m) = zoo::by_name(&model) else {
                eprintln!("error: unknown model `{model}`");
                return 2;
            };
            let lib = match ChipletLibrary::load(&library) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            match lib.deploy(&m, WeightScale::Log) {
                Ok(d) => {
                    if json {
                        let v = serde_json::json!({
                            "model": m.name(),
                            "config": d.config_name,
                            "similarity": d.similarity,
                            "coverage": d.coverage,
                            "utilization": d.utilization,
                            "latency_ms": d.ppa.latency_s * 1e3,
                            "energy_mj": d.ppa.energy_j * 1e3,
                            "custom_nre_avoided": d.custom_nre_avoided,
                        });
                        println!("{}", serde_json::to_string_pretty(&v).expect("json"));
                    } else {
                        println!(
                            "{} -> {} (similarity {:.3}): coverage {:.0}%, utilization {:.3}",
                            m.name(),
                            d.config_name,
                            d.similarity,
                            d.coverage * 100.0,
                            d.utilization
                        );
                        println!(
                            "  {:.3} ms | {:.3} mJ on hardened silicon; avoided custom NRE {}",
                            d.ppa.latency_s * 1e3,
                            d.ppa.energy_j * 1e3,
                            d.custom_nre_avoided
                                .map(|v| format!("{v:.3} (normalised)"))
                                .unwrap_or_else(|| "n/a".into())
                        );
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Command::Simulate {
            model,
            overlap,
            batch,
        } => {
            let Some(m) = zoo::by_name(&model) else {
                eprintln!("error: unknown model `{model}`");
                return 2;
            };
            let mut opts = ClaireOptions::default();
            if g.threads.is_some() {
                opts.space.threads = g.threads;
            }
            if g.degrade {
                opts.policy = RobustnessPolicy::Degrade;
            }
            opts.search = search_policy(g.search);
            opts.telemetry = g.telemetry.clone();
            let claire = Claire::new(opts);
            let custom = match claire.custom_for(&m) {
                Ok(c) => {
                    warn_degraded(c.model.name(), c.degradation.as_ref());
                    c
                }
                Err(e) => return fail(&e),
            };
            let mode = if overlap {
                claire_sim::Mode::Overlapped
            } else {
                claire_sim::Mode::Strict
            };
            match claire_sim::simulate(&m, &custom.config, mode) {
                Ok(report) => {
                    println!(
                        "{}: {:.4} ms simulated ({} tiles, {} transfers) vs {:.4} ms analytical",
                        m.name(),
                        report.latency_s() * 1e3,
                        report.tiles_executed,
                        report.transfers,
                        custom.report.latency_s * 1e3
                    );
                    if batch > 1 {
                        match claire_sim::simulate_batch(&m, &custom.config, batch) {
                            Ok(cycles) => {
                                let tput = batch as f64 / (cycles as f64 / 1e9);
                                println!(
                                    "batch {batch}: {:.4} ms total, {tput:.0} inferences/s",
                                    cycles as f64 / 1e6
                                );
                            }
                            Err(e) => return fail(&e),
                        }
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Command::Parse {
            path,
            image,
            seq,
            name,
            json,
        } => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return 2;
                }
            };
            let (input, class) = match (image, seq) {
                (_, Some((tokens, features))) => (
                    InputShape::Sequence { tokens, features },
                    ModelClass::Transformer,
                ),
                (Some((channels, height, width)), None) => (
                    InputShape::Image {
                        channels,
                        height,
                        width,
                    },
                    ModelClass::Cnn,
                ),
                (None, None) => (
                    InputShape::Image {
                        channels: 3,
                        height: 224,
                        width: 224,
                    },
                    ModelClass::Cnn,
                ),
            };
            let model = match parse_model(&name, &text, ParseOptions { input, class }) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            println!(
                "parsed {}: {} layers, {:.1} MMACs, {} params",
                model.name(),
                model.layer_count(),
                model.macs() as f64 / 1e6,
                model.param_count()
            );
            let opts = match options(false, None, None, g) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let claire = Claire::new(opts);
            let engine = engine_for(&claire);
            load_warm(&claire, &engine);
            match claire.custom_for_with_engine(&model, &engine) {
                Ok(custom) => {
                    if let Err(e) = claire.export_telemetry(&engine) {
                        return fail(&e);
                    }
                    save_warm(&claire, &engine);
                    warn_degraded(custom.model.name(), custom.degradation.as_ref());
                    let s = CustomSummary::from(&custom);
                    if json {
                        println!("{}", serde_json::to_string_pretty(&s).expect("serialise"));
                    } else {
                        println!(
                            "custom configuration: {} | {} chiplet(s) | {:.3} ms | {:.3} mJ | {:.1} mm^2",
                            s.hardware,
                            s.chiplets.len(),
                            s.ppa.latency_ms,
                            s.ppa.energy_mj,
                            s.ppa.area_mm2
                        );
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
    }
}

fn describe(m: &Model) {
    let p = m.param_count() as f64;
    let params = if p >= 1e9 {
        format!("{:.2} B", p / 1e9)
    } else {
        format!("{:.2} M", p / 1e6)
    };
    println!(
        "  {:18} {:12} {:>10}  {} layers",
        m.name(),
        m.class().to_string(),
        params,
        m.layer_count()
    );
}

fn print_train(s: &TrainSummary) {
    println!(
        "generic C_g: {} chiplets, {:.1} mm^2",
        s.generic_chiplets, s.generic_area_mm2
    );
    for l in &s.libraries {
        println!(
            "{} <- {:?} | {} | {} chiplet(s) | NRE {:.3} vs custom {:.3} ({:.2}x)",
            l.name,
            l.members,
            l.hardware,
            l.chiplets.len(),
            l.nre,
            l.cumulative_custom_nre,
            l.cumulative_custom_nre / l.nre
        );
    }
}
