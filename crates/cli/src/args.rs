//! Minimal dependency-free argument parsing for the CLI.

use std::fmt;

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `models [--extended]` — list the built-in algorithms.
    Models {
        /// Include the extended test set.
        extended: bool,
    },
    /// `custom <model> [--json] [--config <file>]`.
    Custom {
        /// Algorithm name (zoo lookup).
        model: String,
        /// Emit machine-readable JSON.
        json: bool,
        /// Optional RunConfig JSON file.
        config: Option<String>,
    },
    /// `train [--paper-subsets] [--threshold <t>] [--json] [--config <file>]`.
    Train {
        /// Pin the paper's Table III partition.
        paper_subsets: bool,
        /// Weighted-Jaccard threshold for the algorithmic partition.
        threshold: Option<f64>,
        /// Emit machine-readable JSON.
        json: bool,
        /// Optional RunConfig JSON file.
        config: Option<String>,
    },
    /// `init-config <file>` — write the default RunConfig JSON.
    InitConfig {
        /// Destination path.
        path: String,
    },
    /// `flow [--paper-subsets] [--extended] [--json]` — train + test.
    Flow {
        /// Pin the paper's Table III partition.
        paper_subsets: bool,
        /// Append the extended test set.
        extended: bool,
        /// Emit machine-readable JSON.
        json: bool,
    },
    /// `parse <file> [--image CxHxW] [--seq TOKENSxFEATURES] [--name <n>] [--json]`.
    Parse {
        /// Path to a `print(model)` dump.
        path: String,
        /// Image input shape.
        image: Option<(u32, u32, u32)>,
        /// Sequence input shape.
        seq: Option<(u32, u32)>,
        /// Model name to record.
        name: String,
        /// Emit machine-readable JSON.
        json: bool,
    },
    /// `describe <model>` — per-layer and profile summary.
    Describe {
        /// Algorithm name (zoo lookup).
        model: String,
    },
    /// `export-library <file> [--paper-subsets] [--threshold <t>]` —
    /// train and persist the hardened chiplet library.
    ExportLibrary {
        /// Destination path.
        path: String,
        /// Pin the paper's Table III partition.
        paper_subsets: bool,
        /// Weighted-Jaccard threshold for the algorithmic partition.
        threshold: Option<f64>,
    },
    /// `deploy <model> --library <file> [--json]` — deploy an
    /// algorithm onto a stored library without retraining.
    Deploy {
        /// Algorithm name (zoo lookup).
        model: String,
        /// Library file path.
        library: String,
        /// Emit machine-readable JSON.
        json: bool,
    },
    /// `simulate <model> [--overlap] [--batch <n>]` — run the
    /// discrete-event simulator on a custom configuration.
    Simulate {
        /// Algorithm name (zoo lookup).
        model: String,
        /// Use tile-granular overlapped execution.
        overlap: bool,
        /// Pipelined batch size (1 = single inference).
        batch: usize,
    },
    /// `serve [--config <file>] [--listen <addr>] [--queue <n>]
    /// [--io-timeout-ms <ms>] [--checkpoint-ms <ms>]
    /// [--serve-faults <spec>] [--event-log <path>]` — resident engine
    /// answering JSON-lines requests on stdin or a socket.
    Serve {
        /// Optional RunConfig JSON file.
        config: Option<String>,
        /// Socket address: a unix path (contains `/`) or `host:port`;
        /// `None` serves stdin.
        listen: Option<String>,
        /// Admission queue capacity before typed load shedding.
        queue: usize,
        /// Per-connection read/write timeout, milliseconds.
        io_timeout_ms: u64,
        /// Warm-state checkpoint interval, milliseconds (0 disables).
        checkpoint_ms: u64,
        /// Seeded serve-layer fault drill: `SEED[:RATE|:class=rate,…]`.
        serve_faults: Option<String>,
        /// Stream one JSON object per request lifecycle transition to
        /// this path (`None` disables the structured event log).
        event_log: Option<String>,
    },
    /// `help`.
    Help,
}

/// Argument-parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

fn err(msg: impl Into<String>) -> ParseArgsError {
    ParseArgsError(msg.into())
}

fn parse_dims2(s: &str) -> Result<(u32, u32), ParseArgsError> {
    let parts: Vec<_> = s.split('x').collect();
    if parts.len() != 2 {
        return Err(err(format!("expected AxB, got `{s}`")));
    }
    Ok((
        parts[0]
            .parse()
            .map_err(|_| err(format!("bad number in `{s}`")))?,
        parts[1]
            .parse()
            .map_err(|_| err(format!("bad number in `{s}`")))?,
    ))
}

fn parse_dims3(s: &str) -> Result<(u32, u32, u32), ParseArgsError> {
    let parts: Vec<_> = s.split('x').collect();
    if parts.len() != 3 {
        return Err(err(format!("expected CxHxW, got `{s}`")));
    }
    let p = |i: usize| -> Result<u32, ParseArgsError> {
        parts[i]
            .parse()
            .map_err(|_| err(format!("bad number in `{s}`")))
    };
    Ok((p(0)?, p(1)?, p(2)?))
}

/// Strips a global `--threads <n>` option (valid with any command)
/// from the raw argument list, returning the worker count and the
/// remaining arguments for [`parse_args`].
///
/// # Errors
///
/// Returns [`ParseArgsError`] when the value is missing, not a
/// number, or zero.
pub fn extract_threads(args: &[String]) -> Result<(Option<usize>, Vec<String>), ParseArgsError> {
    let mut threads = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it.next().ok_or_else(|| err("--threads requires a value"))?;
            let n: usize = v
                .parse()
                .map_err(|_| err(format!("bad thread count `{v}`")))?;
            if n == 0 {
                return Err(err("--threads must be at least 1"));
            }
            threads = Some(n);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((threads, rest))
}

/// Strips a global `--degrade` flag (valid with any command) from the
/// raw argument list, returning whether graceful degradation was
/// requested and the remaining arguments for [`parse_args`].
pub fn extract_degrade(args: &[String]) -> (bool, Vec<String>) {
    let mut degrade = false;
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        if a == "--degrade" {
            degrade = true;
        } else {
            rest.push(a.clone());
        }
    }
    (degrade, rest)
}

/// Strips a global `--legacy-flow` flag (valid with any command) from
/// the raw argument list, returning whether the legacy recursive flow
/// (the oracle the plan-equivalence suite pins the default flat
/// execution plan against) was requested and the remaining arguments
/// for [`parse_args`].
pub fn extract_legacy_flow(args: &[String]) -> (bool, Vec<String>) {
    let mut legacy = false;
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        if a == "--legacy-flow" {
            legacy = true;
        } else {
            rest.push(a.clone());
        }
    }
    (legacy, rest)
}

/// The search policy requested on the command line, mirrored into
/// `claire_core::SearchPolicy` by the binary (this module stays
/// dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliSearch {
    /// Visit every surviving point of the DSE space (the oracle).
    Exhaustive,
    /// Seeded successive halving over the latency lower bound.
    SuccessiveHalving {
        /// Tie-break seed (reproducible trajectories).
        seed: u64,
        /// Stage-B evaluation budget (halving stops at this size).
        budget: usize,
    },
}

/// Strips the global `--search <exhaustive|successive-halving>`,
/// `--budget <n>` and `--seed <n>` options (valid with any command)
/// from the raw argument list, returning the requested search policy
/// and the remaining arguments for [`parse_args`]. `--budget`
/// (default 32) and `--seed` (default 0) are only meaningful with
/// `--search successive-halving` and are rejected otherwise.
///
/// # Errors
///
/// Returns [`ParseArgsError`] when a value is missing or malformed,
/// when the policy name is unknown, when the budget is zero, or when
/// `--budget`/`--seed` appear without successive halving.
pub fn extract_search(args: &[String]) -> Result<(Option<CliSearch>, Vec<String>), ParseArgsError> {
    let mut policy: Option<&str> = None;
    let mut budget: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--search" => {
                let v = it.next().ok_or_else(|| err("--search requires a value"))?;
                policy = Some(v.as_str());
            }
            "--budget" => {
                let v = it.next().ok_or_else(|| err("--budget requires a value"))?;
                let n: usize = v.parse().map_err(|_| err(format!("bad budget `{v}`")))?;
                if n == 0 {
                    return Err(err("--budget must be at least 1"));
                }
                budget = Some(n);
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| err("--seed requires a value"))?;
                seed = Some(v.parse().map_err(|_| err(format!("bad seed `{v}`")))?);
            }
            _ => rest.push(a.clone()),
        }
    }
    let search = match policy {
        None => {
            if budget.is_some() || seed.is_some() {
                return Err(err("--budget/--seed require --search successive-halving"));
            }
            None
        }
        Some("exhaustive") => {
            if budget.is_some() || seed.is_some() {
                return Err(err("--budget/--seed require --search successive-halving"));
            }
            Some(CliSearch::Exhaustive)
        }
        Some("successive-halving") => Some(CliSearch::SuccessiveHalving {
            seed: seed.unwrap_or(0),
            budget: budget.unwrap_or(32),
        }),
        Some(other) => {
            return Err(err(format!(
                "unknown search policy `{other}` (expected `exhaustive` or \
                 `successive-halving`)"
            )))
        }
    };
    Ok((search, rest))
}

/// Strips a global `--trace-out <path>` option (valid with any
/// command) from the raw argument list, returning the Chrome-trace
/// export path and the remaining arguments for [`parse_args`].
///
/// # Errors
///
/// Returns [`ParseArgsError`] when the value is missing.
pub fn extract_trace_out(args: &[String]) -> Result<(Option<String>, Vec<String>), ParseArgsError> {
    extract_path_option(args, "--trace-out")
}

/// Strips a global `--metrics-json <path>` option (valid with any
/// command) from the raw argument list, returning the metrics export
/// path and the remaining arguments for [`parse_args`].
///
/// # Errors
///
/// Returns [`ParseArgsError`] when the value is missing.
pub fn extract_metrics_json(
    args: &[String],
) -> Result<(Option<String>, Vec<String>), ParseArgsError> {
    extract_path_option(args, "--metrics-json")
}

/// Strips a global `--cache-dir <dir>` option (valid with any
/// command) from the raw argument list, returning the warm-state
/// snapshot directory and the remaining arguments for [`parse_args`].
/// When set, the engine loads `<dir>/claire.snapshot` before the flow
/// (falling back to a cold start, with a warning, when the file is
/// missing or invalid) and saves the warmed memo tiers back on
/// success.
///
/// # Errors
///
/// Returns [`ParseArgsError`] when the value is missing.
pub fn extract_cache_dir(args: &[String]) -> Result<(Option<String>, Vec<String>), ParseArgsError> {
    extract_path_option(args, "--cache-dir")
}

fn extract_path_option(
    args: &[String],
    name: &str,
) -> Result<(Option<String>, Vec<String>), ParseArgsError> {
    let mut path = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            let v = it
                .next()
                .ok_or_else(|| err(format!("{name} requires a value")))?;
            path = Some(v.clone());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((path, rest))
}

/// Parses the command line (excluding argv\[0\]).
///
/// # Errors
///
/// Returns [`ParseArgsError`] with a usage-style message on unknown
/// commands, unknown flags, or malformed values.
pub fn parse_args(args: &[String]) -> Result<Command, ParseArgsError> {
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();

    let flag = |name: &str| rest.contains(&name);
    let value = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| *a == name)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let positional: Vec<&str> = {
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in rest.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with("--") {
                // Flags with values.
                if matches!(
                    *a,
                    "--threshold"
                        | "--image"
                        | "--seq"
                        | "--name"
                        | "--config"
                        | "--batch"
                        | "--library"
                        | "--listen"
                        | "--queue"
                        | "--io-timeout-ms"
                        | "--checkpoint-ms"
                        | "--serve-faults"
                        | "--event-log"
                ) && i + 1 < rest.len()
                {
                    skip = true;
                }
                continue;
            }
            out.push(*a);
        }
        out
    };

    match cmd {
        "models" => Ok(Command::Models {
            extended: flag("--extended"),
        }),
        "custom" => {
            let model = positional
                .first()
                .ok_or_else(|| err("usage: custom <model> [--json]"))?;
            Ok(Command::Custom {
                model: (*model).to_owned(),
                json: flag("--json"),
                config: value("--config").map(str::to_owned),
            })
        }
        "train" => Ok(Command::Train {
            paper_subsets: flag("--paper-subsets"),
            threshold: value("--threshold")
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| err(format!("bad threshold `{v}`")))
                })
                .transpose()?,
            json: flag("--json"),
            config: value("--config").map(str::to_owned),
        }),
        "init-config" => {
            let path = positional
                .first()
                .ok_or_else(|| err("usage: init-config <file>"))?;
            Ok(Command::InitConfig {
                path: (*path).to_owned(),
            })
        }
        "flow" => Ok(Command::Flow {
            paper_subsets: flag("--paper-subsets"),
            extended: flag("--extended"),
            json: flag("--json"),
        }),
        "parse" => {
            let path = positional
                .first()
                .ok_or_else(|| err("usage: parse <file> [--image CxHxW | --seq TxF]"))?;
            let image = value("--image").map(parse_dims3).transpose()?;
            let seq = value("--seq").map(parse_dims2).transpose()?;
            if image.is_some() && seq.is_some() {
                return Err(err("--image and --seq are mutually exclusive"));
            }
            Ok(Command::Parse {
                path: (*path).to_owned(),
                image,
                seq,
                name: value("--name").unwrap_or("parsed").to_owned(),
                json: flag("--json"),
            })
        }
        "describe" => {
            let model = positional
                .first()
                .ok_or_else(|| err("usage: describe <model>"))?;
            Ok(Command::Describe {
                model: (*model).to_owned(),
            })
        }
        "export-library" => {
            let path = positional
                .first()
                .ok_or_else(|| err("usage: export-library <file> [--paper-subsets]"))?;
            Ok(Command::ExportLibrary {
                path: (*path).to_owned(),
                paper_subsets: flag("--paper-subsets"),
                threshold: value("--threshold")
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| err(format!("bad threshold `{v}`")))
                    })
                    .transpose()?,
            })
        }
        "deploy" => {
            let model = positional
                .first()
                .ok_or_else(|| err("usage: deploy <model> --library <file>"))?;
            let library =
                value("--library").ok_or_else(|| err("deploy requires --library <file>"))?;
            Ok(Command::Deploy {
                model: (*model).to_owned(),
                library: library.to_owned(),
                json: flag("--json"),
            })
        }
        "simulate" => {
            let model = positional
                .first()
                .ok_or_else(|| err("usage: simulate <model> [--overlap] [--batch <n>]"))?;
            let batch = value("--batch")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| err(format!("bad batch `{v}`")))
                })
                .transpose()?
                .unwrap_or(1);
            if batch == 0 {
                return Err(err("batch must be at least 1"));
            }
            Ok(Command::Simulate {
                model: (*model).to_owned(),
                overlap: flag("--overlap"),
                batch,
            })
        }
        "serve" => {
            let queue = value("--queue")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| err(format!("bad queue capacity `{v}`")))
                })
                .transpose()?
                .unwrap_or(64);
            if queue == 0 {
                return Err(err("--queue must be at least 1"));
            }
            let io_timeout_ms = value("--io-timeout-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad io timeout `{v}`")))
                })
                .transpose()?
                .unwrap_or(30_000);
            if io_timeout_ms == 0 {
                return Err(err("--io-timeout-ms must be at least 1"));
            }
            let checkpoint_ms = value("--checkpoint-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad checkpoint interval `{v}`")))
                })
                .transpose()?
                .unwrap_or(15_000);
            Ok(Command::Serve {
                config: value("--config").map(str::to_owned),
                listen: value("--listen").map(str::to_owned),
                queue,
                io_timeout_ms,
                checkpoint_ms,
                serve_faults: value("--serve-faults").map(str::to_owned),
                event_log: value("--event-log").map(str::to_owned),
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(err(format!(
            "unknown command `{other}` (try `claire-cli help`)"
        ))),
    }
}

/// The help text.
pub const USAGE: &str = "\
claire-cli — composable chiplet libraries for AI inference

USAGE:
  claire-cli models [--extended]
      List the built-in algorithm zoo.
  claire-cli custom <model> [--json] [--config <file>]
      Derive a custom chiplet configuration for one algorithm.
  claire-cli train [--paper-subsets] [--threshold <t>] [--json]
             [--config <file>]
      Run the training phase on the 13 Table-I algorithms.
  claire-cli init-config <file>
      Write the default RunConfig JSON (constraints, DSE space, NRE
      calibration) for editing and reuse via --config.
  claire-cli flow [--paper-subsets] [--extended] [--json]
      Full train + test flow (optionally with the extended test set).
  claire-cli parse <file> [--image CxHxW | --seq TOKENSxFEATURES]
             [--name <n>] [--json]
      Parse a PyTorch print(model) dump and derive a custom
      configuration for it.
  claire-cli simulate <model> [--overlap] [--batch <n>]
      Discrete-event simulation of the model on its custom
      configuration (validates the analytical latency).
  claire-cli describe <model>
      Layer inventory, compute profile and arithmetic intensity.
  claire-cli export-library <file> [--paper-subsets] [--threshold <t>]
      Train on the Table-I set and persist the hardened chiplet
      library as a JSON artifact.
  claire-cli deploy <model> --library <file> [--json]
      Deploy an algorithm onto a stored library without retraining.
  claire-cli serve [--config <file>] [--listen <addr>] [--queue <n>]
             [--io-timeout-ms <ms>] [--checkpoint-ms <ms>]
             [--serve-faults <spec>] [--event-log <path>]
      Stay resident and answer JSON-lines requests (one object per
      line, one response per line). Concurrent requests are batched
      into shared evaluations over one warm engine. Without --listen
      the protocol runs on stdin/stdout; --listen binds a multi-client
      socket instead: a unix path when the address contains '/'
      (e.g. /tmp/claire.sock), else host:port (the bound address —
      useful with :0 — is announced on stderr). Ops:
        {\"op\":\"custom\",\"model\":\"Resnet50\"}
        {\"op\":\"custom\",\"printout\":\"<print(model) dump>\",
         \"name\":\"net\",\"image\":[3,224,224]}     (or \"seq\":[T,F])
        {\"op\":\"assign\",\"model\":\"VGG16\"}
        {\"op\":\"what_if\",\"model\":\"Resnet50\",
         \"constraints\":{\"chiplet_area_limit_mm2\":50.0}}
        {\"op\":\"stats\"}   (live introspection: answered immediately,
         mid-serve, without pausing dispatch — counters, queue/
         in-flight gauges, uptime, snapshot generation, exact
         queue-wait/latency quantiles and 1s/10s/60s request/shed/
         deadline-expiry rates)
      Optional per request: \"id\" (echoed back), \"degrade\"
      (true/false overrides the global policy), \"deadline_ms\"
      (latency budget; a lapsed request is answered with error code 14
      — still queued, or cancelled cooperatively mid-evaluation —
      without touching its batch neighbours), \"trace_out\" (write
      the engine trace so far to this path; needs --trace-out to arm
      tracing). Every response and typed error echoes a serve-assigned
      monotonic \"trace_id\" for correlation with the event log and
      flight recorder. Errors come back typed per request:
      {\"ok\":false,\"error\":{\"code\":N,\"detail\":...}} with the
      exit-code numbering below; the server keeps running.
      Robustness knobs:
        --queue <n>           Admission queue capacity (default 64).
                              A full queue answers code 13 instead of
                              queueing unboundedly.
        --io-timeout-ms <ms>  Socket read/write timeout (default
                              30000). A stalled (slow-loris) client
                              gets a typed code-2 answer and a closed
                              connection.
        --checkpoint-ms <ms>  Warm-state checkpoint interval (default
                              15000; 0 disables; needs --cache-dir).
                              Checkpoints are atomic tmp+rename,
                              generation-countered, and skipped while
                              the memo tiers are unchanged. SIGINT/
                              SIGTERM drains the queue and saves once
                              more, so kill -9 loses at most one
                              interval of warmth — never snapshot
                              validity.
        --serve-faults <spec> Seeded serve-layer fault drill:
                              SEED (all classes at 0.1), SEED:RATE,
                              or SEED:class=rate,... over classes
                              dropped_connection, slow_loris_client,
                              mid_batch_panic,
                              checkpoint_write_failure. Faults stay in
                              the serving layer — answers remain
                              bit-identical to a fault-free run.
        --event-log <path>    Stream one JSON object per request
                              lifecycle transition (received ->
                              admitted/shed -> dispatched ->
                              evaluating -> answered/errored) to this
                              path, written by a dedicated logger
                              thread behind a bounded channel; drops
                              under pressure are counted in
                              serve.events_dropped, never silent.
                              Independent of the always-on in-memory
                              flight recorder, which dumps the recent
                              event ring to
                              <cache-dir>/flight-<pid>.json on panic,
                              drain and fault containment.
  claire-cli help
      Show this text.

Any command also accepts --threads <n> to set the evaluation
engine's worker count (else CLAIRE_THREADS, else all cores), and
--degrade to relax constraints (latency slack, then power density,
then chiplet area) instead of failing when the DSE finds no feasible
configuration; degraded results are flagged on stderr. --legacy-flow
runs the legacy recursive flow (per-model staged sweeps) instead of
the default flat execution plan; outputs are bit-identical — the
recursive flow is kept as the equivalence oracle.

Search policy (also valid with any command):
  --search exhaustive           Visit every screened DSE point
                                (the default, and the oracle).
  --search successive-halving   Seeded successive halving over the
                                latency lower bound; exact pricing is
                                spent only on the surviving rung.
                                Tune with --budget <n> (stage-B
                                evaluation budget, default 32) and
                                --seed <n> (tie-break seed, default 0;
                                same seed => same trajectory). With
                                --budget >= the space size this is
                                exactly exhaustive. Example:
                                  claire-cli custom Resnet50 \
                                    --search successive-halving \
                                    --budget 16 --seed 42

Warm-state persistence (also valid with any command):
  --cache-dir <dir>      Load <dir>/claire.snapshot into the engine
                         before the flow and save the warmed memo
                         tiers back after it. Results are bit-identical
                         to a cold run — the snapshot only stores memo
                         entries keyed by their exact inputs. A
                         missing, corrupt or version-mismatched
                         snapshot degrades to a cold start with a
                         warning on stderr; it never fails the run.

Telemetry exports (also valid with any command):
  --trace-out <path>     Write a Chrome Trace Event JSON of the run
                         (load in Perfetto or chrome://tracing; one
                         track per worker thread). Enables tracing.
  --metrics-json <path>  Write the run's counters, gauges, histograms,
                         stage aggregates and per-worker utilization
                         as JSON.

EXIT CODES:
  0 success (including --degrade fallbacks)   2 usage / bad input file
  3 empty algorithm set      4 no feasible configuration
  5 chiplet area unsatisfiable   6 incomplete coverage
  7 worker panic             8 non-finite metric
  9 invalid input           10 no interposer route
 11 internal invariant violation   12 invalid warm-state snapshot
 13 overloaded (admission queue full, request shed)
 14 deadline exceeded (request budget lapsed)
  1 other errors
";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn models_with_extended() {
        assert_eq!(
            parse_args(&v(&["models", "--extended"])).unwrap(),
            Command::Models { extended: true }
        );
    }

    #[test]
    fn custom_requires_model() {
        assert!(parse_args(&v(&["custom"])).is_err());
        assert_eq!(
            parse_args(&v(&["custom", "Resnet50", "--json"])).unwrap(),
            Command::Custom {
                model: "Resnet50".into(),
                json: true,
                config: None
            }
        );
        match parse_args(&v(&["custom", "Resnet50", "--config", "run.json"])).unwrap() {
            Command::Custom { config, .. } => assert_eq!(config.as_deref(), Some("run.json")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn train_threshold_parses() {
        match parse_args(&v(&["train", "--threshold", "0.45"])).unwrap() {
            Command::Train { threshold, .. } => assert_eq!(threshold, Some(0.45)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&v(&["train", "--threshold", "abc"])).is_err());
    }

    #[test]
    fn parse_image_dims() {
        match parse_args(&v(&["parse", "net.txt", "--image", "3x224x224"])).unwrap() {
            Command::Parse { image, seq, .. } => {
                assert_eq!(image, Some((3, 224, 224)));
                assert_eq!(seq, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_seq_dims() {
        match parse_args(&v(&[
            "parse", "net.txt", "--seq", "128x768", "--name", "enc",
        ]))
        .unwrap()
        {
            Command::Parse { seq, name, .. } => {
                assert_eq!(seq, Some((128, 768)));
                assert_eq!(name, "enc");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn image_and_seq_conflict() {
        let e =
            parse_args(&v(&["parse", "n.txt", "--image", "3x8x8", "--seq", "1x2"])).unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn threads_is_extracted_from_any_position() {
        let (t, rest) = extract_threads(&v(&["train", "--threads", "4", "--json"])).unwrap();
        assert_eq!(t, Some(4));
        assert_eq!(rest, v(&["train", "--json"]));
        assert_eq!(
            parse_args(&rest).unwrap(),
            Command::Train {
                paper_subsets: false,
                threshold: None,
                json: true,
                config: None
            }
        );
    }

    #[test]
    fn degrade_is_extracted_from_any_position() {
        let (d, rest) = extract_degrade(&v(&["flow", "--degrade", "--json"]));
        assert!(d);
        assert_eq!(rest, v(&["flow", "--json"]));
        let (d, rest) = extract_degrade(&v(&["train"]));
        assert!(!d);
        assert_eq!(rest, v(&["train"]));
    }

    #[test]
    fn legacy_flow_is_extracted_from_any_position() {
        let (l, rest) = extract_legacy_flow(&v(&["flow", "--legacy-flow", "--json"]));
        assert!(l);
        assert_eq!(rest, v(&["flow", "--json"]));
        let (l, rest) = extract_legacy_flow(&v(&["train"]));
        assert!(!l);
        assert_eq!(rest, v(&["train"]));
    }

    #[test]
    fn telemetry_paths_are_extracted_from_any_position() {
        let (trace, rest) =
            extract_trace_out(&v(&["flow", "--trace-out", "t.json", "--json"])).unwrap();
        assert_eq!(trace.as_deref(), Some("t.json"));
        assert_eq!(rest, v(&["flow", "--json"]));
        let (metrics, rest) =
            extract_metrics_json(&v(&["--metrics-json", "m.json", "train"])).unwrap();
        assert_eq!(metrics.as_deref(), Some("m.json"));
        assert_eq!(rest, v(&["train"]));
        let (none, rest) = extract_trace_out(&v(&["flow"])).unwrap();
        assert_eq!(none, None);
        assert_eq!(rest, v(&["flow"]));
    }

    #[test]
    fn telemetry_paths_require_values() {
        assert!(extract_trace_out(&v(&["flow", "--trace-out"])).is_err());
        assert!(extract_metrics_json(&v(&["flow", "--metrics-json"])).is_err());
    }

    #[test]
    fn search_is_extracted_from_any_position() {
        let (s, rest) = extract_search(&v(&[
            "custom",
            "Resnet50",
            "--search",
            "successive-halving",
            "--budget",
            "16",
            "--seed",
            "42",
        ]))
        .unwrap();
        assert_eq!(
            s,
            Some(CliSearch::SuccessiveHalving {
                seed: 42,
                budget: 16
            })
        );
        assert_eq!(rest, v(&["custom", "Resnet50"]));
        let (s, rest) = extract_search(&v(&["flow", "--search", "exhaustive"])).unwrap();
        assert_eq!(s, Some(CliSearch::Exhaustive));
        assert_eq!(rest, v(&["flow"]));
        let (s, rest) = extract_search(&v(&["flow"])).unwrap();
        assert_eq!(s, None);
        assert_eq!(rest, v(&["flow"]));
    }

    #[test]
    fn successive_halving_defaults_are_applied() {
        let (s, _) = extract_search(&v(&["flow", "--search", "successive-halving"])).unwrap();
        assert_eq!(
            s,
            Some(CliSearch::SuccessiveHalving {
                seed: 0,
                budget: 32
            })
        );
    }

    #[test]
    fn search_rejects_bad_combinations() {
        assert!(extract_search(&v(&["flow", "--search"])).is_err());
        assert!(extract_search(&v(&["flow", "--search", "random"])).is_err());
        assert!(extract_search(&v(&["flow", "--budget", "8"])).is_err());
        assert!(extract_search(&v(&["flow", "--seed", "7"])).is_err());
        assert!(extract_search(&v(&["flow", "--search", "exhaustive", "--budget", "8"])).is_err());
        assert!(extract_search(&v(&[
            "flow",
            "--search",
            "successive-halving",
            "--budget",
            "0"
        ]))
        .is_err());
        assert!(extract_search(&v(&[
            "flow",
            "--search",
            "successive-halving",
            "--budget",
            "many"
        ]))
        .is_err());
    }

    #[test]
    fn threads_rejects_zero_and_garbage() {
        assert!(extract_threads(&v(&["flow", "--threads", "0"])).is_err());
        assert!(extract_threads(&v(&["flow", "--threads", "many"])).is_err());
        assert!(extract_threads(&v(&["flow", "--threads"])).is_err());
    }

    #[test]
    fn cache_dir_is_extracted_from_any_position() {
        let (dir, rest) =
            extract_cache_dir(&v(&["flow", "--cache-dir", ".cache", "--json"])).unwrap();
        assert_eq!(dir.as_deref(), Some(".cache"));
        assert_eq!(rest, v(&["flow", "--json"]));
        let (none, rest) = extract_cache_dir(&v(&["flow"])).unwrap();
        assert_eq!(none, None);
        assert_eq!(rest, v(&["flow"]));
        assert!(extract_cache_dir(&v(&["flow", "--cache-dir"])).is_err());
    }

    #[test]
    fn serve_parses_with_optional_config() {
        assert_eq!(
            parse_args(&v(&["serve"])).unwrap(),
            Command::Serve {
                config: None,
                listen: None,
                queue: 64,
                io_timeout_ms: 30_000,
                checkpoint_ms: 15_000,
                serve_faults: None,
                event_log: None,
            }
        );
        match parse_args(&v(&["serve", "--config", "run.json"])).unwrap() {
            Command::Serve { config, .. } => assert_eq!(config.as_deref(), Some("run.json")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_parses_robustness_knobs() {
        match parse_args(&v(&[
            "serve",
            "--listen",
            "/tmp/claire.sock",
            "--queue",
            "8",
            "--io-timeout-ms",
            "500",
            "--checkpoint-ms",
            "0",
            "--serve-faults",
            "42:mid_batch_panic=1.0",
            "--event-log",
            "events.jsonl",
        ]))
        .unwrap()
        {
            Command::Serve {
                listen,
                queue,
                io_timeout_ms,
                checkpoint_ms,
                serve_faults,
                event_log,
                ..
            } => {
                assert_eq!(listen.as_deref(), Some("/tmp/claire.sock"));
                assert_eq!(queue, 8);
                assert_eq!(io_timeout_ms, 500);
                assert_eq!(checkpoint_ms, 0);
                assert_eq!(serve_faults.as_deref(), Some("42:mid_batch_panic=1.0"));
                assert_eq!(event_log.as_deref(), Some("events.jsonl"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_rejects_degenerate_knobs() {
        assert!(parse_args(&v(&["serve", "--queue", "0"])).is_err());
        assert!(parse_args(&v(&["serve", "--queue", "many"])).is_err());
        assert!(parse_args(&v(&["serve", "--io-timeout-ms", "0"])).is_err());
        assert!(parse_args(&v(&["serve", "--checkpoint-ms", "soon"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse_args(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn flag_values_not_treated_as_positionals() {
        match parse_args(&v(&["parse", "--name", "x", "file.txt"])).unwrap() {
            Command::Parse { path, name, .. } => {
                assert_eq!(path, "file.txt");
                assert_eq!(name, "x");
            }
            other => panic!("{other:?}"),
        }
    }
}
