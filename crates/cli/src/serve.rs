//! `claire-cli serve` — a resident engine answering JSON-lines
//! requests on stdin.
//!
//! One [`ResidentEngine`] lives for the whole session: every request
//! shares its memo tiers, and requests that arrive together are
//! batched into shared evaluations (one flat plan per custom batch,
//! one test table per assign batch). Combined with `--cache-dir`, the
//! first request after a restart is answered at warm-reflow speed.
//!
//! Protocol: one JSON object per input line, one JSON object per
//! output line, in request order within a batch. Every response
//! carries `"ok"` plus either the op's result or a typed `"error"`
//! `{code, detail}` using the CLI exit-code numbering — a failed
//! request never takes the server down. See [`crate::args::USAGE`].

use crate::summary::CustomSummary;
use claire_core::{
    ClaireError, ClaireOptions, Constraints, CustomRequest, ResidentEngine, RobustnessPolicy,
};
use claire_model::parse::{parse_model, InputShape, ParseOptions};
use claire_model::{zoo, Model, ModelClass};
use serde::Value;
use std::io::{BufRead, Write};
use std::sync::mpsc;

/// One parsed request line.
struct Request {
    /// Caller correlation id, echoed back verbatim.
    id: Value,
    /// Per-request Chrome-trace export path.
    trace_out: Option<String>,
    op: Op,
}

enum Op {
    Custom {
        model: Model,
        policy: Option<RobustnessPolicy>,
    },
    Assign {
        model: Model,
    },
    WhatIf {
        model: Model,
        constraints: Constraints,
    },
}

/// Runs the resident server until stdin closes. Returns the process
/// exit code (0 — per-request failures are answered, not fatal).
pub fn run(opts: ClaireOptions) -> i32 {
    let resident = ResidentEngine::new(opts, zoo::training_set());
    match resident.load_warm_state() {
        Ok(true) => eprintln!("info: warm state loaded"),
        Ok(false) => {}
        Err(e) => eprintln!("warning: {e}; starting cold"),
    }

    // A reader thread keeps pulling lines while the engine evaluates,
    // so requests arriving mid-batch are served together in the next
    // batch instead of one by one.
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    while let Ok(first) = rx.recv() {
        let mut lines = vec![first];
        while let Ok(more) = rx.try_recv() {
            lines.push(more);
        }
        let responses = serve_batch(&resident, &lines);
        let mut out = std::io::stdout().lock();
        for r in &responses {
            let line = serde_json::to_string(r).unwrap_or_else(|_| "null".into());
            if writeln!(out, "{line}").is_err() {
                return 1;
            }
        }
        if out.flush().is_err() {
            return 1;
        }
    }

    if let Err(e) = resident.save_warm_state() {
        eprintln!("warning: failed to save warm state: {e}");
    }
    let _ = reader.join();
    0
}

/// Serves one batch of request lines, returning responses in input
/// order. Custom requests across the batch share one flat evaluation
/// table; assignment requests share one test table.
fn serve_batch(resident: &ResidentEngine, lines: &[String]) -> Vec<Value> {
    let parsed: Vec<Result<Request, String>> = lines.iter().map(|l| parse_request(l)).collect();
    let mut responses: Vec<Option<Value>> = parsed.iter().map(|_| None).collect();

    // Batch all customs into one plan.
    let custom_idx: Vec<usize> = parsed
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            matches!(
                p,
                Ok(Request {
                    op: Op::Custom { .. },
                    ..
                })
            )
        })
        .map(|(i, _)| i)
        .collect();
    if !custom_idx.is_empty() {
        let requests: Vec<CustomRequest> = custom_idx
            .iter()
            .map(|&i| match &parsed[i] {
                Ok(Request {
                    op: Op::Custom { model, policy },
                    ..
                }) => CustomRequest {
                    model: model.clone(),
                    policy: *policy,
                    constraints: None,
                },
                _ => unreachable!("custom_idx filters Op::Custom"),
            })
            .collect();
        for (&i, result) in custom_idx.iter().zip(resident.custom_batch(&requests)) {
            responses[i] = Some(match result {
                Ok(custom) => {
                    let degradation = custom.degradation.as_ref().map(ToString::to_string);
                    serde_json::json!({
                        "op": "custom",
                        "ok": true,
                        "result": CustomSummary::from(&custom),
                        "degradation": degradation,
                    })
                }
                Err(e) => error_value("custom", &e),
            });
        }
    }

    // Batch all assignments into one test table.
    let assign_idx: Vec<usize> = parsed
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            matches!(
                p,
                Ok(Request {
                    op: Op::Assign { .. },
                    ..
                })
            )
        })
        .map(|(i, _)| i)
        .collect();
    if !assign_idx.is_empty() {
        let models: Vec<Model> = assign_idx
            .iter()
            .map(|&i| match &parsed[i] {
                Ok(Request {
                    op: Op::Assign { model },
                    ..
                }) => model.clone(),
                _ => unreachable!("assign_idx filters Op::Assign"),
            })
            .collect();
        match resident.assign_batch(&models) {
            Ok(reports) => {
                for (&i, report) in assign_idx.iter().zip(&reports) {
                    responses[i] = Some(assign_value(resident, report));
                }
            }
            // A whole-batch failure (e.g. one uncoverable model)
            // isolates to per-model retries so the others still get
            // answers.
            Err(_) => {
                for (&i, model) in assign_idx.iter().zip(&models) {
                    responses[i] = Some(match resident.assign(model) {
                        Ok(report) => assign_value(resident, &report),
                        Err(e) => error_value("assign", &e),
                    });
                }
            }
        }
    }

    // What-if probes and parse errors, individually.
    for (i, p) in parsed.iter().enumerate() {
        if responses[i].is_some() {
            continue;
        }
        responses[i] = Some(match p {
            Ok(Request {
                op: Op::WhatIf { model, constraints },
                ..
            }) => match resident.what_if(model, *constraints) {
                Ok(report) => serde_json::json!({
                    "op": "what_if",
                    "ok": true,
                    "feasible": report.feasible,
                    "result": report.result.as_ref().map(CustomSummary::from),
                    "infeasibility": report.infeasibility.as_ref().map(ToString::to_string),
                }),
                Err(e) => error_value("what_if", &e),
            },
            Err(msg) => serde_json::json!({
                "ok": false,
                "error": serde_json::json!({ "code": 2, "detail": msg }),
            }),
            Ok(_) => unreachable!("custom/assign answered above"),
        });
    }

    // Echo ids and honor per-request trace exports.
    parsed
        .iter()
        .zip(responses)
        .map(|(p, r)| {
            let mut value = r.unwrap_or(Value::Null);
            if let (Ok(req), Value::Object(fields)) = (p, &mut value) {
                fields.insert(0, ("id".to_string(), req.id.clone()));
                if let Some(path) = &req.trace_out {
                    let note = export_trace(resident, path);
                    fields.push(("trace".to_string(), note));
                }
            }
            value
        })
        .collect()
}

/// Writes the engine's trace so far to `path` (the trace spans the
/// resident engine's whole life, not just this request), returning a
/// note for the response.
fn export_trace(resident: &ResidentEngine, path: &str) -> Value {
    if resident.options().telemetry.trace_out.is_none() {
        return Value::String("tracing disabled (start serve with --trace-out to arm)".into());
    }
    match resident.engine().write_trace(std::path::Path::new(path)) {
        Ok(()) => Value::String(format!("written to {path}")),
        Err(e) => Value::String(format!("failed: {e}")),
    }
}

/// The success response for one assignment report.
fn assign_value(resident: &ResidentEngine, report: &claire_core::TestReport) -> Value {
    let assigned = report.assigned_library.and_then(|k| {
        resident
            .train_output()
            .ok()
            .and_then(|t| t.libraries.get(k))
            .map(|l| l.config.name.clone())
    });
    serde_json::json!({
        "op": "assign",
        "ok": true,
        "model": report.model_name,
        "assigned": assigned,
        "similarity": report.similarity,
        "coverage": report.coverage,
        "utilization_library": report.utilization_library,
        "utilization_generic": report.utilization_generic,
        "ppa": report.ppa.library,
    })
}

/// The failure response for a typed pipeline error, with the CLI
/// exit-code numbering.
fn error_value(op: &str, e: &ClaireError) -> Value {
    serde_json::json!({
        "op": op,
        "ok": false,
        "error": serde_json::json!({ "code": crate::exit_code(e), "detail": e.to_string() }),
    })
}

/// Parses one request line into a [`Request`], with a user-facing
/// message on malformed input.
fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = value.as_object().ok_or("request must be a JSON object")?;
    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "id" | "op"
                | "model"
                | "printout"
                | "name"
                | "image"
                | "seq"
                | "degrade"
                | "constraints"
                | "trace_out"
        ) {
            return Err(format!("unknown request field `{key}`"));
        }
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let trace_out = value
        .get("trace_out")
        .map(|v| {
            v.as_str()
                .ok_or("trace_out must be a string")
                .map(str::to_owned)
        })
        .transpose()?;
    let model = request_model(&value)?;
    let op = match value.get("op").and_then(Value::as_str) {
        Some("custom") => Op::Custom {
            model,
            policy: match value.get("degrade").map(Value::as_bool) {
                None => None,
                Some(Some(true)) => Some(RobustnessPolicy::Degrade),
                Some(Some(false)) => Some(RobustnessPolicy::FailFast),
                Some(None) => return Err("degrade must be a boolean".into()),
            },
        },
        Some("assign") => Op::Assign { model },
        Some("what_if") => Op::WhatIf {
            model,
            constraints: request_constraints(&value)?,
        },
        Some(other) => return Err(format!("unknown op `{other}`")),
        None => return Err("missing `op` (custom | assign | what_if)".into()),
    };
    Ok(Request { id, trace_out, op })
}

/// Resolves the request's model: a zoo name (`"model"`) or an inline
/// `print(model)` dump (`"printout"` with optional `"name"`,
/// `"image": [C,H,W]` or `"seq": [TOKENS,FEATURES]`).
fn request_model(value: &Value) -> Result<Model, String> {
    match (value.get("model"), value.get("printout")) {
        (Some(_), Some(_)) => Err("`model` and `printout` are mutually exclusive".into()),
        (Some(name), None) => {
            let name = name.as_str().ok_or("model must be a string")?;
            zoo::by_name(name)
                .ok_or_else(|| format!("unknown model `{name}` (see `claire-cli models`)"))
        }
        (None, Some(text)) => {
            let text = text.as_str().ok_or("printout must be a string")?;
            let name = match value.get("name") {
                Some(n) => n.as_str().ok_or("name must be a string")?,
                None => "parsed",
            };
            let (input, class) = match (dims(value, "image", 3)?, dims(value, "seq", 2)?) {
                (Some(_), Some(_)) => return Err("image and seq are mutually exclusive".into()),
                (_, Some(s)) => (
                    InputShape::Sequence {
                        tokens: s[0],
                        features: s[1],
                    },
                    ModelClass::Transformer,
                ),
                (Some(i), None) => (
                    InputShape::Image {
                        channels: i[0],
                        height: i[1],
                        width: i[2],
                    },
                    ModelClass::Cnn,
                ),
                (None, None) => (
                    InputShape::Image {
                        channels: 3,
                        height: 224,
                        width: 224,
                    },
                    ModelClass::Cnn,
                ),
            };
            parse_model(name, text, ParseOptions { input, class }).map_err(|e| e.to_string())
        }
        (None, None) => Err("missing `model` or `printout`".into()),
    }
}

/// Reads an optional `[u32; n]` shape field.
fn dims(value: &Value, key: &str, n: usize) -> Result<Option<Vec<u32>>, String> {
    let Some(v) = value.get(key) else {
        return Ok(None);
    };
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{key} must be an array of {n} integers"))?;
    if arr.len() != n {
        return Err(format!("{key} must have exactly {n} elements"));
    }
    arr.iter()
        .map(|e| {
            e.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| format!("{key} elements must be u32 integers"))
        })
        .collect::<Result<Vec<u32>, String>>()
        .map(Some)
}

/// Builds the what-if constraints: the resident defaults overridden
/// by any fields present in the request's `constraints` object.
fn request_constraints(value: &Value) -> Result<Constraints, String> {
    let Some(c) = value.get("constraints") else {
        return Err("what_if requires a `constraints` object".into());
    };
    let fields = c.as_object().ok_or("constraints must be an object")?;
    let mut out = Constraints::default();
    for (key, v) in fields {
        let num = v
            .as_f64()
            .ok_or_else(|| format!("constraint `{key}` must be a number"))?;
        match key.as_str() {
            "chiplet_area_limit_mm2" => out.chiplet_area_limit_mm2 = num,
            "power_density_limit_w_per_mm2" => out.power_density_limit_w_per_mm2 = num,
            "latency_slack" => out.latency_slack = num,
            other => return Err(format!("unknown constraint `{other}`")),
        }
    }
    Ok(out)
}
