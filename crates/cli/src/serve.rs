//! `claire-cli serve` — a crash-safe, admission-controlled resident
//! engine answering JSON-lines requests on stdin or a socket.
//!
//! One [`ResidentEngine`] lives for the whole session: every request
//! shares its memo tiers, and requests that arrive together are
//! batched into shared evaluations (one flat plan per custom batch,
//! one test table per assign batch). Combined with `--cache-dir`, the
//! first request after a restart is answered at warm-reflow speed.
//!
//! Hardening layers, front to back:
//!
//! * **Front ends** — stdin (the original mode) or `--listen` with a
//!   unix socket path or a `host:port`. Socket connections get one
//!   reader and one writer thread each, both under `--io-timeout-ms`;
//!   a stalled (slow-loris) client earns a typed timeout error and a
//!   closed connection, never a wedged server.
//! * **Admission** — a bounded queue (`--queue`). When it is full the
//!   request is answered immediately with a typed
//!   [`ClaireError::Overloaded`] (exit-code 13 numbering) instead of
//!   queueing unboundedly.
//! * **Deadlines** — a request may declare `"deadline_ms"`. A watchdog
//!   fires its cancel flag when the budget lapses: still-queued
//!   requests are answered `DeadlineExceeded{stage:"queued"}`, and
//!   in-flight custom evaluations stop at the flat plan's cooperative
//!   checkpoints and answer `stage:"evaluating"`. Completed neighbours
//!   in the same batch are untouched — answers stay bit-identical.
//! * **Crash safety** — with `--cache-dir`, warm state is checkpointed
//!   every `--checkpoint-ms` (atomic tmp+rename, generation-countered,
//!   skipped when the memo tiers are unchanged) and saved again on
//!   SIGINT/SIGTERM after a graceful drain. A `kill -9` loses at most
//!   one checkpoint interval of warmth, never the snapshot's validity.
//! * **Fault drills** — `--serve-faults SEED[:SPEC]` arms the seeded
//!   serve-layer [`FaultPlan`] classes (dropped connection, slow-loris
//!   client, mid-batch panic, checkpoint write failure). The plan is
//!   consulted by this front end only and never attached to the
//!   engine, so answers stay bit-identical and snapshots still save.
//!
//! Protocol: one JSON object per input line, one JSON object per
//! output line, in request order within a batch (admission-shed and
//! malformed-input errors are answered immediately and may overtake
//! earlier queued work). Every response carries `"ok"` plus either the
//! op's result or a typed `"error"` `{code, detail}` using the CLI
//! exit-code numbering — a failed request never takes the server
//! down. See [`crate::args::USAGE`].

use crate::summary::CustomSummary;
use claire_core::telemetry::{Gauge, Metric};
use claire_core::{
    ClaireError, ClaireOptions, Constraints, CustomRequest, FaultClass, FaultPlan, LifecycleEvent,
    LifecycleStage, ResidentEngine, RobustnessPolicy,
};
use claire_model::parse::{parse_model, InputShape, ParseOptions};
use claire_model::{zoo, Model, ModelClass};
use serde::{Number, Value};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How often the dispatcher wakes with an empty queue to poll for
/// shutdown and drive periodic checkpoints.
const DISPATCH_TICK: Duration = Duration::from_millis(50);

/// How often the deadline watchdog scans for lapsed budgets.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

/// Bounded capacity of the event-log channel between request threads
/// and the logger thread. A full channel drops the event (counted in
/// `serve.events_dropped`) instead of stalling dispatch on a slow
/// disk.
const EVENT_LOG_CHANNEL_CAP: usize = 1024;

/// Serving knobs parsed from the command line (defaults in
/// [`crate::args`]).
pub struct ServeSettings {
    /// `--listen`: a unix socket path (contains `/`) or `host:port`;
    /// `None` serves stdin.
    pub listen: Option<String>,
    /// `--queue`: admission queue capacity before typed shedding.
    pub queue: usize,
    /// `--io-timeout-ms`: per-connection read/write timeout.
    pub io_timeout_ms: u64,
    /// `--checkpoint-ms`: warm-state checkpoint interval (0 disables;
    /// needs `--cache-dir` to have any effect).
    pub checkpoint_ms: u64,
    /// `--serve-faults`: seeded serve-layer fault drill spec.
    pub serve_faults: Option<String>,
    /// `--event-log`: stream one JSON object per request lifecycle
    /// transition to this path (`None` disables).
    pub event_log: Option<String>,
}

/// One parsed request line.
struct Request {
    /// Caller correlation id, echoed back verbatim.
    id: Value,
    /// Per-request Chrome-trace export path.
    trace_out: Option<String>,
    /// Per-request latency budget; lapse answers `DeadlineExceeded`.
    deadline_ms: Option<u64>,
    op: Op,
}

enum Op {
    Custom {
        model: Model,
        policy: Option<RobustnessPolicy>,
    },
    Assign {
        model: Model,
    },
    WhatIf {
        model: Model,
        constraints: Constraints,
    },
    /// In-band introspection: answered at admission, never queued, so
    /// a stats probe is served concurrently with in-flight batches.
    Stats,
}

fn op_label(op: &Op) -> &'static str {
    match op {
        Op::Custom { .. } => "custom",
        Op::Assign { .. } => "assign",
        Op::WhatIf { .. } => "what_if",
        Op::Stats => "stats",
    }
}

/// One admitted request waiting for (or in) evaluation.
struct Job {
    request: Request,
    /// The serve-assigned monotonic trace id, echoed back as
    /// `trace_id` in the response and stamped on every lifecycle
    /// event.
    trace: u64,
    /// Where the response line goes (stdout writer or the
    /// connection's writer thread).
    reply: mpsc::Sender<String>,
    /// Admission time, for the queue-wait histogram.
    enqueued: Instant,
    /// Absolute deadline derived from `deadline_ms` at admission.
    deadline: Option<Instant>,
    /// Set by the watchdog when the deadline lapses; threaded into the
    /// flat plan's cooperative cancellation checkpoints.
    cancel: Arc<AtomicBool>,
}

/// The event-log writer: a bounded sender into the dedicated logger
/// thread, plus the thread's handle so shutdown can flush-join it.
struct EventLog {
    tx: mpsc::SyncSender<String>,
    logger: std::thread::JoinHandle<()>,
}

/// Everything the front ends, watchdog and dispatcher share.
struct ServerState {
    resident: Arc<ResidentEngine>,
    queue: Mutex<VecDeque<Job>>,
    wakeup: Condvar,
    capacity: usize,
    io_timeout: Duration,
    /// stdin closed (stdin mode only); socket mode drains on signal.
    eof: AtomicBool,
    conn_seq: AtomicU64,
    batch_seq: AtomicU64,
    /// Live deadlines the watchdog scans: `(lapse instant, cancel)`.
    deadlines: Mutex<Vec<(Instant, Arc<AtomicBool>)>>,
    /// The serve-layer fault drill; never attached to the engine.
    faults: Option<FaultPlan>,
    /// The serve epoch every lifecycle timestamp is measured from.
    epoch: Instant,
    /// Requests currently inside engine evaluation (live gauge for
    /// `stats`; the histogram records per-dispatch observations).
    inflight: AtomicU64,
    /// The `--event-log` writer; `None` when disabled, and taken (to
    /// close the channel and join the logger) on shutdown.
    event_log: Mutex<Option<EventLog>>,
    /// Where flight-recorder dumps land: `<cache-dir>/flight-<pid>.json`
    /// (the temp dir when no cache dir is configured).
    flight_path: PathBuf,
}

impl ServerState {
    fn telemetry(&self) -> &claire_core::Telemetry {
        self.resident.engine().telemetry()
    }

    /// Microseconds since the serve epoch — the injected clock every
    /// core-side observer call uses.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one lifecycle transition: streamed to the event log
    /// when armed (dropped — and counted — when the bounded channel is
    /// full, so a slow disk never stalls dispatch), then retained in
    /// the in-memory flight ring and folded into the window rates.
    fn emit(&self, event: LifecycleEvent) {
        if let Some(log) = lock(&self.event_log).as_ref() {
            let line = to_line(&event.to_value());
            if log.tx.try_send(line).is_err() {
                self.telemetry().count(Metric::ServeEventsDropped);
            }
        }
        self.resident.observer().observe(event);
    }

    /// A lifecycle event at the current serve time with no optional
    /// fields; callers fill `batch`/`queue_wait_us`/`outcome`.
    fn lifecycle(
        &self,
        stage: LifecycleStage,
        trace: u64,
        id: &Value,
        op: &'static str,
    ) -> LifecycleEvent {
        LifecycleEvent {
            t_us: self.now_us(),
            stage,
            trace,
            id: id.clone(),
            op,
            batch: None,
            queue_wait_us: None,
            outcome: None,
        }
    }

    /// Atomically dumps the flight ring (tmp + rename, like
    /// snapshots): the post-mortem trail the panic hook, the drain
    /// path, the fault-containment site and every checkpoint leave
    /// behind. Failures are swallowed — the recorder must never take
    /// the server down with it.
    fn dump_flight(&self, reason: &str) {
        let (events, total, evicted) = self.resident.observer().flight_events();
        let value = serde_json::json!({
            "pid": u64::from(std::process::id()),
            "reason": reason,
            "uptime_us": self.now_us(),
            "checkpoint_generation": self.resident.checkpoint_generation(),
            "captured": events.len() as u64,
            "total_events": total,
            "evicted": evicted,
            "events": Value::Array(events),
        });
        let rendered = serde_json::to_string_pretty(&value).unwrap_or_else(|_| "null".into());
        if write_atomic(&self.flight_path, rendered.as_bytes()).is_ok() {
            self.telemetry().count(Metric::ServeFlightDumps);
        }
    }

    /// Writes `--metrics-json` atomically (tmp + rename) if armed —
    /// called on the clean exits and on every crash-containment path,
    /// so a dead serve still leaves final metrics next to its flight
    /// dump.
    fn export_metrics_atomic(&self) {
        let Some(path) = &self.resident.options().telemetry.metrics_out else {
            return;
        };
        let rendered = serde_json::to_string_pretty(&self.telemetry().metrics_value())
            .unwrap_or_else(|_| "null".into());
        if let Err(e) = write_atomic(path, rendered.as_bytes()) {
            eprintln!("warning: failed to write metrics {}: {e}", path.display());
        }
    }
}

/// Writes `bytes` to `path` via a process-unique temp file and an
/// atomic rename, so readers (and a concurrent panic hook) only ever
/// see complete files.
fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), seq));
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Spawns the dedicated event-log writer thread behind a bounded
/// channel; each line is flushed as it lands so an abrupt death loses
/// at most the lines still queued in the channel.
fn spawn_event_logger(path: &str) -> Result<EventLog, String> {
    let file =
        std::fs::File::create(path).map_err(|e| format!("cannot create event log {path}: {e}"))?;
    let (tx, rx) = mpsc::sync_channel::<String>(EVENT_LOG_CHANNEL_CAP);
    let logger = std::thread::spawn(move || {
        let mut out = std::io::BufWriter::new(file);
        for line in rx {
            if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                break;
            }
        }
        let _ = out.flush();
    });
    Ok(EventLog { tx, logger })
}

/// Poison-tolerant lock: a panicking holder must not wedge serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

mod signals {
    //! SIGINT/SIGTERM latch. The CLI binary links libc through std, so
    //! the two-line handler is registered with the C `signal` entry
    //! point directly — no new dependency, and the handler only stores
    //! an atomic flag (async-signal-safe).
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    /// Whether a drain-and-save shutdown was requested.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the latch for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            let handler = on_signal as extern "C" fn(i32) as usize;
            signal(2, handler);
            signal(15, handler);
        }
    }
}

/// Runs the resident server until stdin closes (stdin mode) or a
/// SIGINT/SIGTERM drain (either mode). Returns the process exit code
/// (0 — per-request failures are answered, not fatal).
pub fn run(opts: ClaireOptions, settings: &ServeSettings) -> i32 {
    let faults = match settings.serve_faults.as_deref().map(parse_serve_faults) {
        None => None,
        Some(Ok(plan)) => Some(plan),
        Some(Err(msg)) => {
            eprintln!("error: {msg}");
            return 2;
        }
    };

    let event_log = match settings.event_log.as_deref().map(spawn_event_logger) {
        None => None,
        Some(Ok(log)) => Some(log),
        Some(Err(msg)) => {
            eprintln!("error: {msg}");
            return 2;
        }
    };

    let resident = Arc::new(ResidentEngine::new(opts, zoo::training_set()));
    match resident.load_warm_state() {
        Ok(true) => eprintln!("info: warm state loaded"),
        Ok(false) => {}
        Err(e) => eprintln!("warning: {e}; starting cold"),
    }
    signals::install();

    let flight_dir = resident
        .options()
        .cache_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    let flight_path = flight_dir.join(format!("flight-{}.json", std::process::id()));

    let state = Arc::new(ServerState {
        resident: Arc::clone(&resident),
        queue: Mutex::new(VecDeque::new()),
        wakeup: Condvar::new(),
        capacity: settings.queue.max(1),
        io_timeout: Duration::from_millis(settings.io_timeout_ms.max(1)),
        eof: AtomicBool::new(false),
        conn_seq: AtomicU64::new(0),
        batch_seq: AtomicU64::new(0),
        deadlines: Mutex::new(Vec::new()),
        faults,
        epoch: Instant::now(),
        inflight: AtomicU64::new(0),
        event_log: Mutex::new(event_log),
        flight_path,
    });

    // The panic hook is the flight recorder's last line: any panic —
    // injected drill or real bug, contained or fatal — atomically
    // dumps the ring and the final metrics before unwinding proceeds.
    {
        let state = Arc::clone(&state);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            state.dump_flight("panic");
            state.export_metrics_atomic();
            previous(info);
        }));
    }

    {
        let state = Arc::clone(&state);
        std::thread::spawn(move || watchdog(&state));
    }

    let stdout_flusher = match &settings.listen {
        Some(addr) => {
            if let Err(msg) = spawn_listener(addr, &state) {
                eprintln!("error: {msg}");
                return 2;
            }
            None
        }
        None => Some(spawn_stdin_frontend(&state)),
    };

    dispatch(&resident, &state, settings);

    if signals::requested() {
        eprintln!("info: shutdown signal received; queue drained, saving warm state");
    }
    // Final save goes through the generation counter too, but skips
    // the fault drill: the shutdown save is the durability anchor the
    // periodic-checkpoint drill is measured against.
    match resident.checkpoint() {
        Ok(Some(generation)) => {
            state.telemetry().count(Metric::ServeCheckpoints);
            eprintln!("info: warm state saved (checkpoint generation {generation})");
        }
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to save warm state: {e}"),
    }
    state.dump_flight(if signals::requested() {
        "signal_drain"
    } else {
        "eof_drain"
    });
    export_shutdown_telemetry(&state);

    // Close the event-log channel and join the logger so every
    // delivered event is flushed to disk before the process exits.
    if let Some(log) = lock(&state.event_log).take() {
        drop(log.tx);
        let _ = log.logger.join();
    }

    match stdout_flusher {
        // stdin mode after EOF: every sender is gone once the queue is
        // drained, so joining guarantees all responses are flushed.
        Some(flusher) if !signals::requested() => {
            let _ = flusher.join();
        }
        // Signal path (and socket mode): connection readers may still
        // hold reply senders while blocked on their sockets, so a join
        // could hang; a short grace period lets writers flush instead.
        _ => std::thread::sleep(Duration::from_millis(250)),
    }
    0
}

/// Parses `--serve-faults SEED[:SPEC]`: bare `SEED` arms every serve
/// fault class at rate 0.1; `SEED:RATE` arms them all at `RATE`;
/// `SEED:class=rate,...` arms the named classes only (labels as in
/// `fault.*` metrics, e.g. `dropped_connection=1.0`).
fn parse_serve_faults(spec: &str) -> Result<FaultPlan, String> {
    let (seed, rest) = match spec.split_once(':') {
        Some((s, r)) => (s, Some(r)),
        None => (spec, None),
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| format!("bad --serve-faults seed `{seed}`"))?;
    let mut plan = FaultPlan::new(seed);
    match rest {
        None => {
            for class in FaultClass::SERVE {
                plan = plan.with(class, 0.1);
            }
        }
        Some(spec) if spec.contains('=') => {
            for part in spec.split(',') {
                let (label, rate) = part.split_once('=').ok_or_else(|| {
                    format!("bad --serve-faults entry `{part}` (want class=rate)")
                })?;
                let class = FaultClass::from_label(label)
                    .filter(|c| FaultClass::SERVE.contains(c))
                    .ok_or_else(|| format!("unknown serve fault class `{label}`"))?;
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| format!("bad --serve-faults rate `{rate}`"))?;
                plan = plan.with(class, rate);
            }
        }
        Some(rate) => {
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("bad --serve-faults rate `{rate}`"))?;
            for class in FaultClass::SERVE {
                plan = plan.with(class, rate);
            }
        }
    }
    Ok(plan)
}

/// The deadline watchdog: fires cancel flags when budgets lapse and
/// prunes entries whose request already finished (their cancel Arc has
/// no other holder).
fn watchdog(state: &ServerState) {
    loop {
        std::thread::sleep(WATCHDOG_TICK);
        let now = Instant::now();
        let mut entries = lock(&state.deadlines);
        entries.retain(|(deadline, cancel)| {
            if Arc::strong_count(cancel) == 1 {
                return false;
            }
            if *deadline <= now {
                cancel.store(true, Ordering::Relaxed);
                return false;
            }
            true
        });
    }
}

// ---------------------------------------------------------------- //
// Front ends: stdin and socket listeners feeding the admission queue.
// ---------------------------------------------------------------- //

/// Stdin front end: a reader thread admitting lines and a stdout
/// writer thread draining response lines. Returns the writer handle so
/// the EOF path can join it before exiting.
fn spawn_stdin_frontend(state: &Arc<ServerState>) -> std::thread::JoinHandle<()> {
    let (tx, rx) = mpsc::channel::<String>();
    let flusher = std::thread::spawn(move || {
        let mut out = std::io::stdout().lock();
        for line in rx {
            if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                break;
            }
        }
    });
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                admit(&state, trimmed, &tx);
            }
            if signals::requested() {
                break;
            }
        }
        state.eof.store(true, Ordering::SeqCst);
        state.wakeup.notify_all();
    });
    flusher
}

/// Minimal common surface of [`UnixStream`] and [`TcpStream`] the
/// connection handler needs.
trait Conn: Read + Write + Send + Sized + 'static {
    fn try_clone_conn(&self) -> std::io::Result<Self>;
    fn set_io_timeouts(&self, timeout: Duration) -> std::io::Result<()>;
    fn shutdown_both(&self);
}

impl Conn for UnixStream {
    fn try_clone_conn(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_io_timeouts(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))?;
        self.set_write_timeout(Some(timeout))
    }
    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_io_timeouts(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))?;
        self.set_write_timeout(Some(timeout))
    }
    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// Binds the `--listen` address (unix socket path when it contains a
/// `/`, else `host:port`) and spawns the accept loop. The bound
/// address is announced on stderr — with `:0` that is how callers
/// learn the chosen port.
fn spawn_listener(addr: &str, state: &Arc<ServerState>) -> Result<(), String> {
    if addr.contains('/') {
        // A stale socket file from a crashed predecessor would make
        // bind fail; serving takes over the path.
        let _ = std::fs::remove_file(addr);
        let listener =
            UnixListener::bind(addr).map_err(|e| format!("cannot bind unix socket {addr}: {e}"))?;
        eprintln!("info: listening on unix socket {addr}");
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(&state);
                std::thread::spawn(move || handle_connection(stream, &state));
            }
        });
    } else {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        match listener.local_addr() {
            Ok(local) => eprintln!("info: listening on {local}"),
            Err(_) => eprintln!("info: listening on {addr}"),
        }
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(&state);
                std::thread::spawn(move || handle_connection(stream, &state));
            }
        });
    }
    Ok(())
}

/// One socket connection: a writer thread draining response lines and
/// this thread reading request lines under the io timeout. The seeded
/// fault drill may turn the connection into a slow-loris (typed
/// timeout answer, closed) or drop it abruptly after its first
/// request (client sees EOF; the late answer lands on a dead socket).
fn handle_connection<S: Conn>(stream: S, state: &Arc<ServerState>) {
    let conn_id = state.conn_seq.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_io_timeouts(state.io_timeout);
    let Ok(mut write_half) = stream.try_clone_conn() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in rx {
            if write_half.write_all(line.as_bytes()).is_err()
                || write_half.write_all(b"\n").is_err()
                || write_half.flush().is_err()
            {
                break;
            }
        }
    });

    if let Some(plan) = &state.faults {
        if plan.slow_loris(conn_id) {
            // Drill: pretend the client stalled mid-line. Same typed
            // answer and close a real slow-loris earns below.
            state
                .telemetry()
                .count(Metric::for_fault(FaultClass::SlowLorisClient));
            let _ = tx.send(plain_error_line(
                2,
                "read timed out waiting for a complete request line; closing connection",
            ));
            return;
        }
    }
    let drop_after_first = state.faults.as_ref().is_some_and(|plan| {
        let drop = plan.drops_connection(conn_id);
        if drop {
            state
                .telemetry()
                .count(Metric::for_fault(FaultClass::DroppedConnection));
        }
        drop
    });

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if signals::requested() {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if drop_after_first {
                    // Close both halves before the request can be
                    // answered: the client deterministically sees EOF
                    // (finite), while the work itself still runs and
                    // its late answer lands on the dead socket.
                    reader.get_ref().shutdown_both();
                    admit(state, trimmed, &tx);
                    return;
                }
                admit(state, trimmed, &tx);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let _ = tx.send(plain_error_line(
                    2,
                    "read timed out waiting for a complete request line; closing connection",
                ));
                break;
            }
            Err(_) => break,
        }
    }
}

/// Parses one line and either enqueues it or answers immediately:
/// malformed input gets a typed code-2 error, a full queue sheds the
/// request with [`ClaireError::Overloaded`], and a `stats` probe is
/// answered in-band right here — it never queues, so introspection is
/// concurrent with whatever the dispatcher is evaluating.
///
/// Every line — well-formed or not — is assigned the next monotonic
/// trace id, opens its lifecycle with a `received` event, and carries
/// the id back as `trace_id` on the response.
fn admit(state: &ServerState, line: &str, reply: &mpsc::Sender<String>) {
    let trace = state.resident.observer().next_trace();
    state.telemetry().count(Metric::ServeRequests);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            state.emit(state.lifecycle(LifecycleStage::Received, trace, &Value::Null, "invalid"));
            let mut errored =
                state.lifecycle(LifecycleStage::Errored, trace, &Value::Null, "invalid");
            errored.outcome = Some(2);
            state.emit(errored);
            state.telemetry().count(Metric::ServeAnswered);
            let _ = reply.send(plain_error_line_traced(2, &msg, trace));
            return;
        }
    };
    let op = op_label(&request.op);
    state.emit(state.lifecycle(LifecycleStage::Received, trace, &request.id, op));

    if matches!(request.op, Op::Stats) {
        let value = stats_response(state, &request, trace);
        let mut answered = state.lifecycle(LifecycleStage::Answered, trace, &request.id, op);
        answered.outcome = Some(0);
        state.emit(answered);
        state.telemetry().count(Metric::ServeAnswered);
        let _ = reply.send(to_line(&value));
        return;
    }

    let mut queue = lock(&state.queue);
    if queue.len() >= state.capacity {
        let shed = ClaireError::Overloaded {
            queued: queue.len(),
            capacity: state.capacity,
        };
        drop(queue);
        state.telemetry().count(Metric::ServeShed);
        let mut event = state.lifecycle(LifecycleStage::Shed, trace, &request.id, op);
        event.outcome = Some(13);
        state.emit(event);
        state.telemetry().count(Metric::ServeAnswered);
        let mut value = error_value(op, &shed);
        if let Value::Object(fields) = &mut value {
            fields.insert(0, ("id".to_string(), request.id.clone()));
            fields.insert(
                1,
                ("trace_id".to_string(), Value::Number(Number::PosInt(trace))),
            );
        }
        let _ = reply.send(to_line(&value));
        return;
    }
    let now = Instant::now();
    let cancel = Arc::new(AtomicBool::new(false));
    let deadline = request
        .deadline_ms
        .map(|ms| now + Duration::from_millis(ms));
    if let Some(deadline) = deadline {
        lock(&state.deadlines).push((deadline, Arc::clone(&cancel)));
    }
    state.emit(state.lifecycle(LifecycleStage::Admitted, trace, &request.id, op));
    queue.push_back(Job {
        request,
        trace,
        reply: reply.clone(),
        enqueued: now,
        deadline,
        cancel,
    });
    state.wakeup.notify_one();
}

/// Builds the in-band `stats` answer: all counters and gauges, live
/// queue depth / in-flight, uptime, snapshot generation, the exact
/// queue-wait and end-to-end latency quantile summaries, and the
/// 1 s / 10 s / 60 s window rates — all read without pausing dispatch.
fn stats_response(state: &ServerState, request: &Request, trace: u64) -> Value {
    let telemetry = state.telemetry();
    let observer = state.resident.observer();
    let now_us = state.now_us();
    let counters: Vec<(String, Value)> = Metric::ALL
        .iter()
        .map(|&m| {
            (
                m.name().to_owned(),
                Value::Number(Number::PosInt(telemetry.counter(m))),
            )
        })
        .collect();
    let gauges: Vec<(String, Value)> = Gauge::ALL
        .iter()
        .map(|&g| {
            (
                g.name().to_owned(),
                Value::Number(Number::PosInt(telemetry.gauge(g))),
            )
        })
        .collect();
    let (requests, sheds, expiries) = observer.rates(now_us);
    let (_, flight_total, flight_evicted) = observer.flight_events();
    let stats = serde_json::json!({
        "pid": u64::from(std::process::id()),
        "uptime_us": now_us,
        "queue_depth": lock(&state.queue).len() as u64,
        "in_flight": state.inflight.load(Ordering::Relaxed),
        "snapshot_generation": state.resident.checkpoint_generation(),
        "counters": Value::Object(counters),
        "gauges": Value::Object(gauges),
        "quantiles": serde_json::json!({
            "queue_wait_us": observer.queue_wait_summary().to_value(),
            "latency_us": observer.latency_summary().to_value(),
        }),
        "rates": serde_json::json!({
            "requests": requests.to_value(),
            "sheds": sheds.to_value(),
            "deadline_expiries": expiries.to_value(),
        }),
        "event_log": serde_json::json!({
            "enabled": lock(&state.event_log).is_some(),
            "dropped": telemetry.counter(Metric::ServeEventsDropped),
        }),
        "flight": serde_json::json!({
            "path": state.flight_path.display().to_string(),
            "total_events": flight_total,
            "evicted": flight_evicted,
        }),
    });
    serde_json::json!({
        "id": request.id.clone(),
        "trace_id": Value::Number(Number::PosInt(trace)),
        "op": "stats",
        "ok": true,
        "stats": stats,
    })
}

// ---------------------------------------------------------------- //
// The dispatcher: batches, evaluates, checkpoints, survives panics.
// ---------------------------------------------------------------- //

/// The dispatcher loop: drains the admission queue into batches,
/// triages lapsed deadlines, evaluates the rest (containing even a
/// mid-batch panic), and drives periodic warm-state checkpoints. Exits
/// once shutdown was requested (signal, or stdin EOF) and the queue is
/// drained.
fn dispatch(resident: &ResidentEngine, state: &ServerState, settings: &ServeSettings) {
    let telemetry = resident.engine().telemetry();
    let checkpoint_every =
        (settings.checkpoint_ms > 0).then(|| Duration::from_millis(settings.checkpoint_ms));
    let mut last_checkpoint = Instant::now();

    loop {
        let jobs = next_batch(state);
        if jobs.is_empty() {
            if signals::requested() || state.eof.load(Ordering::SeqCst) {
                break;
            }
            maybe_checkpoint(resident, state, checkpoint_every, &mut last_checkpoint);
            continue;
        }
        telemetry.record_in_flight(jobs.len() as u64);
        for job in &jobs {
            let waited = job.enqueued.elapsed();
            telemetry.record_queue_wait(waited);
            state
                .resident
                .observer()
                .record_queue_wait_us(waited.as_micros() as u64);
        }

        // Requests whose deadline lapsed while queued are answered
        // without ever touching the engine.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline.is_some_and(|d| now >= d) {
                let mut event = state.lifecycle(
                    LifecycleStage::Dispatched,
                    job.trace,
                    &job.request.id,
                    op_label(&job.request.op),
                );
                event.queue_wait_us = Some(job.enqueued.elapsed().as_micros() as u64);
                state.emit(event);
                let lapsed = ClaireError::DeadlineExceeded {
                    deadline_ms: job.request.deadline_ms.unwrap_or(0),
                    stage: "queued",
                };
                deliver(
                    state,
                    &job,
                    None,
                    error_value(op_label(&job.request.op), &lapsed),
                );
            } else {
                live.push(job);
            }
        }

        if !live.is_empty() {
            let batch_id = state.batch_seq.fetch_add(1, Ordering::Relaxed);
            for job in &live {
                let mut event = state.lifecycle(
                    LifecycleStage::Dispatched,
                    job.trace,
                    &job.request.id,
                    op_label(&job.request.op),
                );
                event.batch = Some(batch_id);
                event.queue_wait_us = Some(job.enqueued.elapsed().as_micros() as u64);
                state.emit(event);
                let mut event = state.lifecycle(
                    LifecycleStage::Evaluating,
                    job.trace,
                    &job.request.id,
                    op_label(&job.request.op),
                );
                event.batch = Some(batch_id);
                state.emit(event);
            }
            state.inflight.store(live.len() as u64, Ordering::Relaxed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(plan) = &state.faults {
                    if plan.panics_batch(batch_id) {
                        telemetry.count(Metric::for_fault(FaultClass::MidBatchPanic));
                        panic!("injected mid-batch dispatcher panic (serve fault drill)");
                    }
                }
                serve_jobs(resident, &live)
            }));
            state.inflight.store(0, Ordering::Relaxed);
            match outcome {
                Ok(responses) => {
                    for (job, value) in live.iter().zip(responses) {
                        deliver(state, job, Some(batch_id), value);
                    }
                }
                // The batch died mid-evaluation; every member gets a
                // typed answer and the server keeps serving — the memo
                // tiers only ever hold completed exact values. The
                // flight recorder and final metrics are dumped at the
                // containment site (on top of the panic hook's dump)
                // so the post-mortem includes the answers below.
                Err(_) => {
                    for job in &live {
                        let panicked = ClaireError::WorkerPanic {
                            index: 0,
                            message: "serve batch panicked mid-evaluation; request answered, \
                                      server still running"
                                .into(),
                        };
                        deliver(
                            state,
                            job,
                            Some(batch_id),
                            error_value(op_label(&job.request.op), &panicked),
                        );
                    }
                    state.dump_flight("batch_panic_contained");
                    state.export_metrics_atomic();
                }
            }
        }
        maybe_checkpoint(resident, state, checkpoint_every, &mut last_checkpoint);
    }
}

/// Waits up to [`DISPATCH_TICK`] for work, then drains the whole queue
/// as one batch.
fn next_batch(state: &ServerState) -> Vec<Job> {
    let mut queue = lock(&state.queue);
    if queue.is_empty() {
        let (guard, _) = state
            .wakeup
            .wait_timeout(queue, DISPATCH_TICK)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        queue = guard;
    }
    queue.drain(..).collect()
}

/// Runs one periodic checkpoint when the interval lapsed. The fault
/// drill may simulate a write failure — counted, logged, and harmless:
/// the previous snapshot generation on disk stays valid.
fn maybe_checkpoint(
    resident: &ResidentEngine,
    state: &ServerState,
    every: Option<Duration>,
    last: &mut Instant,
) {
    let Some(every) = every else { return };
    if last.elapsed() < every {
        return;
    }
    *last = Instant::now();
    if let Some(plan) = &state.faults {
        if plan.fails_checkpoint(resident.checkpoint_generation() + 1) {
            state
                .telemetry()
                .count(Metric::for_fault(FaultClass::CheckpointWriteFailure));
            eprintln!("warning: checkpoint write failed (injected); serving continues");
            return;
        }
    }
    match resident.checkpoint() {
        Ok(Some(generation)) => {
            state.telemetry().count(Metric::ServeCheckpoints);
            eprintln!("info: warm-state checkpoint generation {generation} written");
        }
        Ok(None) => {}
        Err(e) => eprintln!("warning: checkpoint failed: {e}; serving continues"),
    }
    // Refresh the flight dump alongside the checkpoint: after a
    // kill -9 the loss is bounded by this dump plus the snapshot —
    // at most one checkpoint interval of trail.
    state.dump_flight("checkpoint");
}

/// Serves one batch of admitted jobs, returning responses in job
/// order. Custom requests across the batch share one flat evaluation
/// table (with per-request cancel flags); assignment requests share
/// one test table.
fn serve_jobs(resident: &ResidentEngine, jobs: &[Job]) -> Vec<Value> {
    let mut responses: Vec<Option<Value>> = jobs.iter().map(|_| None).collect();

    // Batch all customs into one plan.
    let custom_idx: Vec<usize> = jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| matches!(j.request.op, Op::Custom { .. }))
        .map(|(i, _)| i)
        .collect();
    if !custom_idx.is_empty() {
        let requests: Vec<CustomRequest> = custom_idx
            .iter()
            .map(|&i| match &jobs[i].request.op {
                Op::Custom { model, policy } => CustomRequest {
                    model: model.clone(),
                    policy: *policy,
                    constraints: None,
                    cancel: Some(Arc::clone(&jobs[i].cancel)),
                    deadline_ms: jobs[i].request.deadline_ms,
                },
                _ => unreachable!("custom_idx filters Op::Custom"),
            })
            .collect();
        for (&i, result) in custom_idx.iter().zip(resident.custom_batch(&requests)) {
            responses[i] = Some(match result {
                Ok(custom) => {
                    let degradation = custom.degradation.as_ref().map(ToString::to_string);
                    serde_json::json!({
                        "op": "custom",
                        "ok": true,
                        "result": CustomSummary::from(&custom),
                        "degradation": degradation,
                    })
                }
                Err(e) => error_value("custom", &e),
            });
        }
    }

    // Batch all assignments into one test table.
    let assign_idx: Vec<usize> = jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| matches!(j.request.op, Op::Assign { .. }))
        .map(|(i, _)| i)
        .collect();
    if !assign_idx.is_empty() {
        let models: Vec<Model> = assign_idx
            .iter()
            .map(|&i| match &jobs[i].request.op {
                Op::Assign { model } => model.clone(),
                _ => unreachable!("assign_idx filters Op::Assign"),
            })
            .collect();
        match resident.assign_batch(&models) {
            Ok(reports) => {
                for (&i, report) in assign_idx.iter().zip(&reports) {
                    responses[i] = Some(assign_value(resident, report));
                }
            }
            // A whole-batch failure (e.g. one uncoverable model)
            // isolates to per-model retries so the others still get
            // answers.
            Err(_) => {
                for (&i, model) in assign_idx.iter().zip(&models) {
                    responses[i] = Some(match resident.assign(model) {
                        Ok(report) => assign_value(resident, &report),
                        Err(e) => error_value("assign", &e),
                    });
                }
            }
        }
    }

    // What-if probes, individually.
    for (i, job) in jobs.iter().enumerate() {
        if responses[i].is_some() {
            continue;
        }
        responses[i] = Some(match &job.request.op {
            Op::WhatIf { model, constraints } => match resident.what_if(model, *constraints) {
                Ok(report) => serde_json::json!({
                    "op": "what_if",
                    "ok": true,
                    "feasible": report.feasible,
                    "result": report.result.as_ref().map(CustomSummary::from),
                    "infeasibility": report.infeasibility.as_ref().map(ToString::to_string),
                }),
                Err(e) => error_value("what_if", &e),
            },
            // Stats probes are answered at admission and never queue.
            _ => unreachable!("custom/assign answered above; stats never queues"),
        });
    }

    responses
        .into_iter()
        .map(|r| r.unwrap_or(Value::Null))
        .collect()
}

/// Finalizes one response — echoes the id and the serve-assigned
/// `trace_id`, honors the per-request trace export, mirrors deadline
/// answers into the `serve.deadline_expired` counter, folds the
/// end-to-end latency into the exact digest, and closes the request's
/// lifecycle with an `answered`/`errored` event — then sends it to
/// the job's writer.
fn deliver(state: &ServerState, job: &Job, batch: Option<u64>, mut value: Value) {
    let resident = &state.resident;
    if let Value::Object(fields) = &mut value {
        fields.insert(0, ("id".to_string(), job.request.id.clone()));
        fields.insert(
            1,
            (
                "trace_id".to_string(),
                Value::Number(Number::PosInt(job.trace)),
            ),
        );
        if let Some(path) = &job.request.trace_out {
            let note = export_trace(resident, path);
            fields.push(("trace".to_string(), note));
        }
    }
    let error_code = value
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_u64);
    if error_code == Some(14) {
        resident
            .engine()
            .telemetry()
            .count(Metric::ServeDeadlineExpired);
    }
    resident
        .observer()
        .record_latency_us(job.enqueued.elapsed().as_micros() as u64);
    let stage = match error_code {
        None => LifecycleStage::Answered,
        Some(_) => LifecycleStage::Errored,
    };
    let mut event = state.lifecycle(stage, job.trace, &job.request.id, op_label(&job.request.op));
    event.batch = batch;
    event.outcome = Some(error_code.unwrap_or(0) as i64);
    state.emit(event);
    state.telemetry().count(Metric::ServeAnswered);
    let _ = job.reply.send(to_line(&value));
}

/// Serializes one response line.
fn to_line(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "null".into())
}

/// A bare (no-id) typed error line for input that never became a
/// request: malformed JSON, or a connection-level timeout.
fn plain_error_line(code: i64, detail: &str) -> String {
    to_line(&serde_json::json!({
        "ok": false,
        "error": serde_json::json!({ "code": code, "detail": detail }),
    }))
}

/// A typed error line for a received line that failed to parse: it
/// did enter the lifecycle, so the serve-assigned trace id is echoed.
fn plain_error_line_traced(code: i64, detail: &str, trace: u64) -> String {
    to_line(&serde_json::json!({
        "trace_id": Value::Number(Number::PosInt(trace)),
        "ok": false,
        "error": serde_json::json!({ "code": code, "detail": detail }),
    }))
}

/// Writes the session's trace/metrics exports (the `--trace-out` and
/// `--metrics-json` paths) on the way out, so `serve.*` counters and
/// the queue-wait/in-flight histograms survive the process. Metrics go
/// through the atomic writer — the same one the crash paths use.
fn export_shutdown_telemetry(state: &ServerState) {
    let resident = &state.resident;
    if let Some(path) = &resident.options().telemetry.trace_out {
        if let Err(e) = resident.engine().write_trace(path) {
            eprintln!("warning: failed to write trace {}: {e}", path.display());
        }
    }
    state.export_metrics_atomic();
}

/// Writes the engine's trace so far to `path` (the trace spans the
/// resident engine's whole life, not just this request), returning a
/// note for the response.
fn export_trace(resident: &ResidentEngine, path: &str) -> Value {
    if resident.options().telemetry.trace_out.is_none() {
        return Value::String("tracing disabled (start serve with --trace-out to arm)".into());
    }
    match resident.engine().write_trace(std::path::Path::new(path)) {
        Ok(()) => Value::String(format!("written to {path}")),
        Err(e) => Value::String(format!("failed: {e}")),
    }
}

/// The success response for one assignment report.
fn assign_value(resident: &ResidentEngine, report: &claire_core::TestReport) -> Value {
    let assigned = report.assigned_library.and_then(|k| {
        resident
            .train_output()
            .ok()
            .and_then(|t| t.libraries.get(k))
            .map(|l| l.config.name.clone())
    });
    serde_json::json!({
        "op": "assign",
        "ok": true,
        "model": report.model_name,
        "assigned": assigned,
        "similarity": report.similarity,
        "coverage": report.coverage,
        "utilization_library": report.utilization_library,
        "utilization_generic": report.utilization_generic,
        "ppa": report.ppa.library,
    })
}

/// The failure response for a typed pipeline error, with the CLI
/// exit-code numbering.
fn error_value(op: &str, e: &ClaireError) -> Value {
    serde_json::json!({
        "op": op,
        "ok": false,
        "error": serde_json::json!({ "code": crate::exit_code(e), "detail": e.to_string() }),
    })
}

/// Parses one request line into a [`Request`], with a user-facing
/// message on malformed input.
fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = value.as_object().ok_or("request must be a JSON object")?;
    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "id" | "op"
                | "model"
                | "printout"
                | "name"
                | "image"
                | "seq"
                | "degrade"
                | "constraints"
                | "trace_out"
                | "deadline_ms"
        ) {
            return Err(format!("unknown request field `{key}`"));
        }
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let trace_out = value
        .get("trace_out")
        .map(|v| {
            v.as_str()
                .ok_or("trace_out must be a string")
                .map(str::to_owned)
        })
        .transpose()?;
    let deadline_ms = value
        .get("deadline_ms")
        .map(|v| {
            v.as_u64()
                .ok_or("deadline_ms must be a non-negative integer")
        })
        .transpose()?;
    let op = match value.get("op").and_then(Value::as_str) {
        Some("custom") => Op::Custom {
            model: request_model(&value)?,
            policy: match value.get("degrade").map(Value::as_bool) {
                None => None,
                Some(Some(true)) => Some(RobustnessPolicy::Degrade),
                Some(Some(false)) => Some(RobustnessPolicy::FailFast),
                Some(None) => return Err("degrade must be a boolean".into()),
            },
        },
        Some("assign") => Op::Assign {
            model: request_model(&value)?,
        },
        Some("what_if") => Op::WhatIf {
            model: request_model(&value)?,
            constraints: request_constraints(&value)?,
        },
        // In-band introspection needs no model — only `id` (and `op`)
        // make sense on a stats probe.
        Some("stats") => Op::Stats,
        Some(other) => return Err(format!("unknown op `{other}`")),
        None => return Err("missing `op` (custom | assign | what_if | stats)".into()),
    };
    Ok(Request {
        id,
        trace_out,
        deadline_ms,
        op,
    })
}

/// Resolves the request's model: a zoo name (`"model"`) or an inline
/// `print(model)` dump (`"printout"` with optional `"name"`,
/// `"image": [C,H,W]` or `"seq": [TOKENS,FEATURES]`).
fn request_model(value: &Value) -> Result<Model, String> {
    match (value.get("model"), value.get("printout")) {
        (Some(_), Some(_)) => Err("`model` and `printout` are mutually exclusive".into()),
        (Some(name), None) => {
            let name = name.as_str().ok_or("model must be a string")?;
            zoo::by_name(name)
                .ok_or_else(|| format!("unknown model `{name}` (see `claire-cli models`)"))
        }
        (None, Some(text)) => {
            let text = text.as_str().ok_or("printout must be a string")?;
            let name = match value.get("name") {
                Some(n) => n.as_str().ok_or("name must be a string")?,
                None => "parsed",
            };
            let (input, class) = match (dims(value, "image", 3)?, dims(value, "seq", 2)?) {
                (Some(_), Some(_)) => return Err("image and seq are mutually exclusive".into()),
                (_, Some(s)) => (
                    InputShape::Sequence {
                        tokens: s[0],
                        features: s[1],
                    },
                    ModelClass::Transformer,
                ),
                (Some(i), None) => (
                    InputShape::Image {
                        channels: i[0],
                        height: i[1],
                        width: i[2],
                    },
                    ModelClass::Cnn,
                ),
                (None, None) => (
                    InputShape::Image {
                        channels: 3,
                        height: 224,
                        width: 224,
                    },
                    ModelClass::Cnn,
                ),
            };
            parse_model(name, text, ParseOptions { input, class }).map_err(|e| e.to_string())
        }
        (None, None) => Err("missing `model` or `printout`".into()),
    }
}

/// Reads an optional `[u32; n]` shape field.
fn dims(value: &Value, key: &str, n: usize) -> Result<Option<Vec<u32>>, String> {
    let Some(v) = value.get(key) else {
        return Ok(None);
    };
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{key} must be an array of {n} integers"))?;
    if arr.len() != n {
        return Err(format!("{key} must have exactly {n} elements"));
    }
    arr.iter()
        .map(|e| {
            e.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| format!("{key} elements must be u32 integers"))
        })
        .collect::<Result<Vec<u32>, String>>()
        .map(Some)
}

/// Builds the what-if constraints: the resident defaults overridden
/// by any fields present in the request's `constraints` object.
fn request_constraints(value: &Value) -> Result<Constraints, String> {
    let Some(c) = value.get("constraints") else {
        return Err("what_if requires a `constraints` object".into());
    };
    let fields = c.as_object().ok_or("constraints must be an object")?;
    let mut out = Constraints::default();
    for (key, v) in fields {
        let num = v
            .as_f64()
            .ok_or_else(|| format!("constraint `{key}` must be a number"))?;
        match key.as_str() {
            "chiplet_area_limit_mm2" => out.chiplet_area_limit_mm2 = num,
            "power_density_limit_w_per_mm2" => out.power_density_limit_w_per_mm2 = num,
            "latency_slack" => out.latency_slack = num,
            other => return Err(format!("unknown constraint `{other}`")),
        }
    }
    Ok(out)
}
