//! Serialisable summaries for the CLI's `--json` output.

use claire_core::{CustomResult, PpaReport, TestOutput, TrainOutput};
use serde::Serialize;

/// One chiplet in a summary.
#[derive(Debug, Clone, Serialize)]
pub struct ChipletSummary {
    /// Library-style name (L1, L2, …).
    pub name: String,
    /// Silicon area, mm².
    pub area_mm2: f64,
    /// Module-group labels.
    pub classes: Vec<String>,
}

/// PPA numbers in presentation units.
#[derive(Debug, Clone, Serialize)]
pub struct PpaSummary {
    /// Latency, milliseconds.
    pub latency_ms: f64,
    /// Energy, millijoules.
    pub energy_mj: f64,
    /// Area, mm².
    pub area_mm2: f64,
    /// Power density, W/mm².
    pub power_density_w_mm2: f64,
}

impl From<&PpaReport> for PpaSummary {
    fn from(r: &PpaReport) -> Self {
        PpaSummary {
            latency_ms: r.latency_s * 1e3,
            energy_mj: r.energy_j * 1e3,
            area_mm2: r.area_mm2,
            power_density_w_mm2: r.power_density_w_per_mm2(),
        }
    }
}

/// Summary of one custom configuration.
#[derive(Debug, Clone, Serialize)]
pub struct CustomSummary {
    /// Algorithm name.
    pub model: String,
    /// Selected tunable hardware parameters, human readable.
    pub hardware: String,
    /// The chiplet partition.
    pub chiplets: Vec<ChipletSummary>,
    /// PPA of the algorithm on this configuration.
    pub ppa: PpaSummary,
}

impl From<&CustomResult> for CustomSummary {
    fn from(c: &CustomResult) -> Self {
        CustomSummary {
            model: c.model.name().to_owned(),
            hardware: c.config.hw.to_string(),
            chiplets: c
                .config
                .chiplets
                .iter()
                .map(|ch| ChipletSummary {
                    name: ch.name.clone(),
                    area_mm2: ch.area_mm2,
                    classes: ch.classes.iter().map(|x| x.label()).collect(),
                })
                .collect(),
            ppa: PpaSummary::from(&c.report),
        }
    }
}

/// Summary of one library configuration.
#[derive(Debug, Clone, Serialize)]
pub struct LibrarySummary {
    /// Configuration name (C_1, …).
    pub name: String,
    /// Member algorithm names (TR_k).
    pub members: Vec<String>,
    /// Selected hardware parameters.
    pub hardware: String,
    /// Chiplets.
    pub chiplets: Vec<ChipletSummary>,
    /// Normalised NRE of the library.
    pub nre: f64,
    /// Cumulative normalised NRE of the members' customs.
    pub cumulative_custom_nre: f64,
}

/// Summary of the training phase.
#[derive(Debug, Clone, Serialize)]
pub struct TrainSummary {
    /// Generic configuration chiplet count.
    pub generic_chiplets: usize,
    /// Generic configuration area, mm².
    pub generic_area_mm2: f64,
    /// Library configurations.
    pub libraries: Vec<LibrarySummary>,
    /// Custom configurations.
    pub customs: Vec<CustomSummary>,
}

impl From<&TrainOutput> for TrainSummary {
    fn from(t: &TrainOutput) -> Self {
        TrainSummary {
            generic_chiplets: t.generic.chiplet_count(),
            generic_area_mm2: t.generic.area_mm2(),
            libraries: t
                .libraries
                .iter()
                .map(|l| LibrarySummary {
                    name: l.config.name.clone(),
                    members: l.member_names.clone(),
                    hardware: l.config.hw.to_string(),
                    chiplets: l
                        .config
                        .chiplets
                        .iter()
                        .map(|ch| ChipletSummary {
                            name: ch.name.clone(),
                            area_mm2: ch.area_mm2,
                            classes: ch.classes.iter().map(|x| x.label()).collect(),
                        })
                        .collect(),
                    nre: l.nre_normalized,
                    cumulative_custom_nre: l.cumulative_custom_nre,
                })
                .collect(),
            customs: t.customs.iter().map(CustomSummary::from).collect(),
        }
    }
}

/// Summary of one test algorithm's deployment.
#[derive(Debug, Clone, Serialize)]
pub struct TestSummary {
    /// Algorithm name.
    pub model: String,
    /// Assigned library name (None when uncovered).
    pub assigned: Option<String>,
    /// Weighted-Jaccard similarity to the assignment.
    pub similarity: f64,
    /// Coverage (1.0 = 100 %).
    pub coverage: f64,
    /// Utilization on the library.
    pub utilization_library: f64,
    /// Utilization on the generic configuration.
    pub utilization_generic: f64,
}

/// Summary of the full flow.
#[derive(Debug, Clone, Serialize)]
pub struct FlowSummary {
    /// Training-phase summary.
    pub train: TrainSummary,
    /// Per-test-algorithm summaries.
    pub tests: Vec<TestSummary>,
}

impl FlowSummary {
    /// Builds the flow summary from framework outputs.
    pub fn new(train: &TrainOutput, test: &TestOutput) -> Self {
        FlowSummary {
            train: TrainSummary::from(train),
            tests: test
                .reports
                .iter()
                .map(|r| TestSummary {
                    model: r.model_name.clone(),
                    assigned: r
                        .assigned_library
                        .map(|k| train.libraries[k].config.name.clone()),
                    similarity: r.similarity,
                    coverage: r.coverage,
                    utilization_library: r.utilization_library,
                    utilization_generic: r.utilization_generic,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_core::{Claire, ClaireOptions};
    use claire_model::zoo;

    #[test]
    fn custom_summary_serialises() {
        let claire = Claire::new(ClaireOptions::default());
        let custom = claire.custom_for(&zoo::alexnet()).unwrap();
        let s = CustomSummary::from(&custom);
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"model\": \"Alexnet\""));
        assert!(json.contains("latency_ms"));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(!parsed["chiplets"].as_array().unwrap().is_empty());
    }

    #[test]
    fn flow_summary_counts_match() {
        let claire = Claire::new(ClaireOptions::default());
        let models = [zoo::resnet18(), zoo::gpt2()];
        let train = claire.train(&models).unwrap();
        let test = claire.evaluate_test(&train, &[zoo::alexnet()]).unwrap();
        let flow = FlowSummary::new(&train, &test);
        assert_eq!(flow.train.customs.len(), 2);
        assert_eq!(flow.tests.len(), 1);
        assert!(flow.tests[0].assigned.is_some());
    }
}
