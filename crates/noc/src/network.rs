//! Link and router PPA models for the NoC and the AIB-2.0 NoP.

use serde::{Deserialize, Serialize};

/// Channel configuration: parallel links forming one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Parallel links per channel.
    pub links_per_channel: u32,
    /// Bits carried per link per cycle.
    pub bits_per_link: u32,
    /// Channel clock, Hz.
    pub clock_hz: u64,
}

impl LinkConfig {
    /// Channel payload per cycle, bits.
    pub fn bits_per_cycle(&self) -> u64 {
        u64::from(self.links_per_channel) * u64::from(self.bits_per_link)
    }

    /// Channel bandwidth, bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bits_per_cycle() as f64 * self.clock_hz as f64
    }
}

/// Router PPA at a 28-nm-class node (5-port wormhole router; the
/// paper sources router numbers from Vivet et al., JSSC 2017).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterPpa {
    /// Router area, mm².
    pub area_mm2: f64,
    /// Per-hop traversal latency, cycles.
    pub hop_cycles: u32,
    /// Energy per bit per hop (router + link), pJ.
    pub energy_pj_per_bit_hop: f64,
}

/// A communication network: channel + router model.
///
/// Two constructors cover the paper's setup: [`Network::noc`]
/// (on-chip) and [`Network::nop_aib2`] (inter-chiplet AIB 2.0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Channel configuration.
    pub link: LinkConfig,
    /// Router model.
    pub router: RouterPpa,
}

impl Network {
    /// The paper's NoC: 40 links × 8 bits per channel at 1 GHz,
    /// 5-port router, ≈0.35 pJ/bit/hop on-chip.
    pub fn noc() -> Self {
        Network {
            link: LinkConfig {
                links_per_channel: 40,
                bits_per_link: 8,
                clock_hz: 1_000_000_000,
            },
            router: RouterPpa {
                area_mm2: 0.018,
                hop_cycles: 2,
                energy_pj_per_bit_hop: 0.35,
            },
        }
    }

    /// The paper's NoP: one AIB 2.0 channel configured for the same
    /// 320 Gb/s bandwidth as the NoC ("to ensure similar bandwidth
    /// with NoC, facilitating the analysis of NoP energy overhead"),
    /// at a higher ≈0.9 pJ/bit (PHY + micro-bump + far-side router).
    pub fn nop_aib2() -> Self {
        Network {
            link: LinkConfig {
                // AIB 2.0: one channel of 80 data IOs, run here at
                // 4 Gb/s per IO = 320 Gb/s, expressed per-NoC-cycle.
                links_per_channel: 40,
                bits_per_link: 8,
                clock_hz: 1_000_000_000,
            },
            router: RouterPpa {
                area_mm2: 0.052, // AIB PHY + interface router
                hop_cycles: 4,   // PHY serialisation + retiming
                energy_pj_per_bit_hop: 0.90,
            },
        }
    }

    /// Payload bytes the channel moves per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.link.bits_per_cycle() as f64 / 8.0
    }

    /// Latency to move `bytes` across `hops` routers, seconds:
    /// serialisation + per-hop traversal.
    pub fn latency_s(&self, bytes: u64, hops: u32) -> f64 {
        let ser_cycles = (bytes as f64 / self.bytes_per_cycle()).ceil();
        let hop_cycles = f64::from(self.router.hop_cycles) * f64::from(hops);
        (ser_cycles + hop_cycles) / self.link.clock_hz as f64
    }

    /// Energy to move `bytes` across `hops` routers, pJ. A zero-hop
    /// transfer (producer and consumer on the same router) is free.
    pub fn energy_pj(&self, bytes: u64, hops: u32) -> f64 {
        bytes as f64 * 8.0 * self.router.energy_pj_per_bit_hop * f64::from(hops)
    }

    /// Latency under sustained background channel utilisation
    /// `utilization ∈ [0, 1)`: the zero-load latency inflated by an
    /// M/D/1-style queueing factor `1 + ρ / (2(1 − ρ))` per hop.
    ///
    /// The paper's analysis is zero-load (its equal-bandwidth NoC/NoP
    /// makes latencies "comparable across all design configurations");
    /// this model quantifies how that breaks down as links saturate.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `[0, 1)`.
    pub fn latency_s_under_load(&self, bytes: u64, hops: u32, utilization: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&utilization),
            "utilization must be in [0, 1), got {utilization}"
        );
        let queueing = 1.0 + utilization / (2.0 * (1.0 - utilization));
        let ser_cycles = (bytes as f64 / self.bytes_per_cycle()).ceil();
        let hop_cycles = f64::from(self.router.hop_cycles) * f64::from(hops) * queueing;
        (ser_cycles + hop_cycles) / self.link.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noc_channel_is_40x8_bits() {
        let n = Network::noc();
        assert_eq!(n.link.bits_per_cycle(), 320);
        assert_eq!(n.bytes_per_cycle(), 40.0);
        assert!((n.link.bandwidth_bps() - 320e9).abs() < 1.0);
    }

    #[test]
    fn nop_matches_noc_bandwidth() {
        // The paper's equal-bandwidth configuration.
        assert_eq!(
            Network::noc().link.bandwidth_bps(),
            Network::nop_aib2().link.bandwidth_bps()
        );
    }

    #[test]
    fn nop_energy_dominates_noc() {
        let bytes = 1_000_000;
        let e_noc = Network::noc().energy_pj(bytes, 1);
        let e_nop = Network::nop_aib2().energy_pj(bytes, 1);
        assert!(e_nop > 2.0 * e_noc);
    }

    #[test]
    fn latency_includes_serialisation_and_hops() {
        let n = Network::noc();
        // 400 bytes / 40 B-per-cycle = 10 cycles + 3 hops * 2 cycles.
        assert!((n.latency_s(400, 3) - 16e-9).abs() < 1e-15);
    }

    #[test]
    fn zero_hops_zero_energy() {
        assert_eq!(Network::noc().energy_pj(1234, 0), 0.0);
    }

    #[test]
    fn energy_linear_in_bytes_and_hops() {
        let n = Network::nop_aib2();
        let e1 = n.energy_pj(100, 1);
        assert!((n.energy_pj(200, 1) - 2.0 * e1).abs() < 1e-9);
        assert!((n.energy_pj(100, 2) - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn zero_load_matches_base_latency() {
        let n = Network::noc();
        assert_eq!(n.latency_s_under_load(400, 3, 0.0), n.latency_s(400, 3));
    }

    #[test]
    fn latency_inflates_toward_saturation() {
        let n = Network::noc();
        let l_low = n.latency_s_under_load(400, 3, 0.2);
        let l_high = n.latency_s_under_load(400, 3, 0.9);
        assert!(l_high > l_low);
        assert!(l_high > n.latency_s(400, 3) * 1.5);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn saturated_link_panics() {
        Network::noc().latency_s_under_load(400, 1, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let n = Network::nop_aib2();
        let json = serde_json::to_string(&n).unwrap();
        let back: Network = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
