//! 2-D torus topology with XY dimension-ordered routing.

use serde::{Deserialize, Serialize};

/// A `cols × rows` 2-D torus of 5-port routers (N/E/S/W + local).
///
/// Module groups are placed row-major; [`Torus2d::hops`] gives the
/// dimension-ordered hop count with wraparound in both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Torus2d {
    cols: u32,
    rows: u32,
}

impl Torus2d {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be non-zero");
        Torus2d { cols, rows }
    }

    /// The smallest (near-square) torus holding at least `n` nodes.
    pub fn fitting(n: usize) -> Self {
        let n = n.max(1) as u32;
        let cols = (n as f64).sqrt().ceil() as u32;
        let rows = n.div_ceil(cols);
        Torus2d::new(cols, rows)
    }

    /// Number of router positions.
    pub fn size(&self) -> u32 {
        self.cols * self.rows
    }

    /// Columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Row-major coordinates of position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    pub fn coords(&self, i: u32) -> (u32, u32) {
        assert!(i < self.size(), "position {i} out of range");
        (i % self.cols, i / self.cols)
    }

    /// Minimal hop count between positions `a` and `b` under XY torus
    /// routing (wraparound in both dimensions).
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.cols - dx) + dy.min(self.rows - dy)
    }

    /// Minimal hop count from `a` to `b` when some links are dead,
    /// by breadth-first search over the surviving topology. `failed`
    /// is consulted per link with its endpoints in canonical
    /// `(min, max)` position order (links are undirected). Returns
    /// `None` when every path from `a` to `b` crosses a failed link.
    ///
    /// With no failed links this equals [`Torus2d::hops`]: BFS finds
    /// shortest paths, and on an intact torus the shortest path length
    /// is exactly the wraparound XY distance.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn hops_avoiding(&self, a: u32, b: u32, failed: &dyn Fn(u32, u32) -> bool) -> Option<u32> {
        self.hops_avoiding_counted(a, b, failed).0
    }

    /// [`Torus2d::hops_avoiding`] that also reports how many positions
    /// the BFS expanded (dequeued and scanned), quantifying the cost
    /// of routing around failures. The hop count is bit-identical to
    /// [`Torus2d::hops_avoiding`]'s — the count is observational only.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn hops_avoiding_counted(
        &self,
        a: u32,
        b: u32,
        failed: &dyn Fn(u32, u32) -> bool,
    ) -> (Option<u32>, u32) {
        assert!(a < self.size(), "position {a} out of range");
        assert!(b < self.size(), "position {b} out of range");
        if a == b {
            return (Some(0), 0);
        }
        let n = self.size() as usize;
        let mut dist: Vec<u32> = vec![u32::MAX; n];
        dist[a as usize] = 0;
        let mut queue = std::collections::VecDeque::with_capacity(n);
        queue.push_back(a);
        let mut expanded = 0u32;
        while let Some(u) = queue.pop_front() {
            expanded += 1;
            let d = dist[u as usize];
            for v in self.neighbors(u) {
                if v == u || dist[v as usize] != u32::MAX {
                    continue;
                }
                if failed(u.min(v), u.max(v)) {
                    continue;
                }
                if v == b {
                    return (Some(d + 1), expanded);
                }
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        }
        (None, expanded)
    }

    /// The (up to four) torus neighbours of position `i`, with
    /// wraparound. Degenerate axes (a single column or row) yield the
    /// position itself, which traversals skip.
    fn neighbors(&self, i: u32) -> [u32; 4] {
        let (x, y) = self.coords(i);
        let idx = |x: u32, y: u32| y * self.cols + x;
        [
            idx((x + self.cols - 1) % self.cols, y),
            idx((x + 1) % self.cols, y),
            idx(x, (y + self.rows - 1) % self.rows),
            idx(x, (y + 1) % self.rows),
        ]
    }

    /// Number of channels crossing the bisection of the torus: a 2-D
    /// torus cut across its longer dimension severs `2 × shorter side`
    /// links (the wraparound doubles the mesh cut).
    pub fn bisection_channels(&self) -> u32 {
        2 * self.cols.min(self.rows)
    }

    /// Mean hop count over all ordered pairs of distinct positions —
    /// used for uniform-traffic estimates.
    pub fn average_hops(&self) -> f64 {
        let n = self.size();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += u64::from(self.hops(a, b));
                }
            }
        }
        total as f64 / (u64::from(n) * u64::from(n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_row_major() {
        let t = Torus2d::new(4, 3);
        assert_eq!(t.coords(0), (0, 0));
        assert_eq!(t.coords(5), (1, 1));
        assert_eq!(t.coords(11), (3, 2));
    }

    #[test]
    fn hops_wrap_around() {
        let t = Torus2d::new(4, 4);
        // 0 = (0,0), 3 = (3,0): direct 3 hops, wrap 1 hop.
        assert_eq!(t.hops(0, 3), 1);
        // 0 = (0,0), 12 = (0,3): wrap 1 hop.
        assert_eq!(t.hops(0, 12), 1);
        // 0 -> (2,2) = 10: 2 + 2.
        assert_eq!(t.hops(0, 10), 4);
    }

    #[test]
    fn hops_symmetric_and_zero_on_self() {
        let t = Torus2d::new(3, 5);
        for a in 0..t.size() {
            assert_eq!(t.hops(a, a), 0);
            for b in 0..t.size() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn fitting_covers_n() {
        for n in 1..40 {
            let t = Torus2d::fitting(n);
            assert!(t.size() as usize >= n, "{n} > {}", t.size());
        }
        assert_eq!(Torus2d::fitting(9).size(), 9);
        assert_eq!(Torus2d::fitting(10).size(), 12);
    }

    #[test]
    fn average_hops_2x2() {
        // Every distinct pair in a 2x2 torus is 1 or 2 hops:
        // (0,1)=1 (0,2)=1 (0,3)=2 ... mean = (1+1+2)*4/(4*3) = 4/3.
        let t = Torus2d::new(2, 2);
        assert!((t.average_hops() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bisection_channels_formula() {
        assert_eq!(Torus2d::new(4, 4).bisection_channels(), 8);
        assert_eq!(Torus2d::new(8, 2).bisection_channels(), 4);
        assert_eq!(Torus2d::new(1, 1).bisection_channels(), 2);
    }

    #[test]
    fn hops_avoiding_matches_hops_with_no_failures() {
        for (c, r) in [(1, 1), (1, 4), (2, 2), (3, 3), (4, 3)] {
            let t = Torus2d::new(c, r);
            for a in 0..t.size() {
                for b in 0..t.size() {
                    assert_eq!(
                        t.hops_avoiding(a, b, &|_, _| false),
                        Some(t.hops(a, b)),
                        "{c}x{r} torus, {a} -> {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn hops_avoiding_routes_around_failed_link() {
        // 3x1 ring 0-1-2-(0). Killing 0-1 forces 0 -> 2 -> 1.
        let t = Torus2d::new(3, 1);
        assert_eq!(t.hops(0, 1), 1);
        let dead = |a: u32, b: u32| (a, b) == (0, 1);
        assert_eq!(t.hops_avoiding(0, 1, &dead), Some(2));
        assert_eq!(t.hops_avoiding(1, 0, &dead), Some(2), "symmetric");
    }

    #[test]
    fn hops_avoiding_reports_disconnection() {
        // 2x1: positions 0 and 1 joined by a single canonical link.
        let t = Torus2d::new(2, 1);
        assert_eq!(t.hops_avoiding(0, 1, &|_, _| true), None);
        assert_eq!(t.hops_avoiding(0, 0, &|_, _| true), Some(0), "self");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        Torus2d::new(2, 2).hops(0, 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        Torus2d::new(0, 3);
    }
}
