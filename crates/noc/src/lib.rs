//! # claire-noc — Network-on-Chip / Network-on-Package models
//!
//! Input #5 of the CLAIRE framework (DATE 2025): "For the NoC
//! interface, 40 links per channel with 8 bits per link are selected,
//! and for the NoP interface, one channel of the AIB 2.0 interface is
//! employed to ensure similar bandwidth with NoC … A 2D torus topology
//! with a 5-port router was selected for the NoC/NoP."
//!
//! Intra-chiplet traffic rides the [`Network::noc`] model; inter-
//! chiplet traffic crosses the [`Network::nop_aib2`] model. Both share
//! the same bandwidth by construction (the paper's equal-bandwidth
//! setup, which is why latency barely changes across configurations),
//! but the NoP pays a higher per-bit energy — the quantity the
//! Louvain clustering step minimises.
//!
//! # Example
//!
//! ```
//! use claire_noc::Network;
//!
//! let noc = Network::noc();
//! let nop = Network::nop_aib2();
//! // Equal bandwidth: transferring the same payload takes the same
//! // serialisation time...
//! assert_eq!(noc.bytes_per_cycle(), nop.bytes_per_cycle());
//! // ...but crossing the package costs more energy per bit.
//! assert!(nop.energy_pj(1024, 1) > noc.energy_pj(1024, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod network;
mod torus;

pub use network::{LinkConfig, Network, RouterPpa};
pub use torus::Torus2d;
