//! Steady-state thermal model.
//!
//! The paper imposes "an upper limit on power density (PD_limit) to
//! manage chip temperature" without deriving it. This model supplies
//! the derivation: with an area-normalised junction-to-ambient
//! resistance `θ_ja` (°C·mm²/W), steady-state junction temperature is
//! `T_j = T_ambient + PD · θ_ja`, so a junction limit translates
//! directly into the paper's power-density constraint.

use serde::{Deserialize, Serialize};

/// Area-normalised steady-state package thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Ambient (board/heatsink inlet) temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance normalised by die area,
    /// °C·mm²/W (a 2.5-D package under a forced-air heatsink lands
    /// around 60 °C·mm²/W).
    pub theta_ja_c_mm2_per_w: f64,
    /// Maximum junction temperature, °C.
    pub t_junction_max_c: f64,
}

impl ThermalModel {
    /// A cloud-accelerator package: 45 °C ambient, θ_ja = 60 °C·mm²/W,
    /// 105 °C junction limit — which yields exactly the paper-default
    /// 1 W/mm² power-density constraint.
    pub fn cloud_heatsink() -> Self {
        ThermalModel {
            ambient_c: 45.0,
            theta_ja_c_mm2_per_w: 60.0,
            t_junction_max_c: 105.0,
        }
    }

    /// Steady-state junction temperature at the given power density.
    ///
    /// # Panics
    ///
    /// Panics if `power_density_w_per_mm2` is negative.
    pub fn junction_c(&self, power_density_w_per_mm2: f64) -> f64 {
        assert!(
            power_density_w_per_mm2 >= 0.0,
            "power density must be non-negative"
        );
        self.ambient_c + power_density_w_per_mm2 * self.theta_ja_c_mm2_per_w
    }

    /// The power-density limit implied by the junction-temperature
    /// budget — the paper's `PD_limit`.
    pub fn implied_pd_limit_w_per_mm2(&self) -> f64 {
        (self.t_junction_max_c - self.ambient_c) / self.theta_ja_c_mm2_per_w
    }

    /// Whether a design point is thermally feasible.
    pub fn is_feasible(&self, power_density_w_per_mm2: f64) -> bool {
        self.junction_c(power_density_w_per_mm2) <= self.t_junction_max_c
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::cloud_heatsink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_package_implies_the_paper_pd_limit() {
        // (105 − 45) / 60 = 1.0 W/mm² — the default PD_limit of the
        // framework's Constraints.
        let t = ThermalModel::cloud_heatsink();
        assert!((t.implied_pd_limit_w_per_mm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn junction_temperature_is_affine_in_pd() {
        let t = ThermalModel::cloud_heatsink();
        assert_eq!(t.junction_c(0.0), 45.0);
        assert_eq!(t.junction_c(0.5), 75.0);
        assert_eq!(t.junction_c(1.0), 105.0);
    }

    #[test]
    fn feasibility_matches_the_limit() {
        let t = ThermalModel::cloud_heatsink();
        assert!(t.is_feasible(0.99));
        assert!(t.is_feasible(1.0));
        assert!(!t.is_feasible(1.01));
    }

    #[test]
    fn better_cooling_raises_the_limit() {
        let liquid = ThermalModel {
            theta_ja_c_mm2_per_w: 20.0,
            ..ThermalModel::cloud_heatsink()
        };
        assert!(liquid.implied_pd_limit_w_per_mm2() > 2.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_pd_panics() {
        ThermalModel::cloud_heatsink().junction_c(-0.1);
    }
}
