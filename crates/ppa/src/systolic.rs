//! Weight-stationary systolic-array timing/energy model.
//!
//! "Convolutional layers are implemented using weight-stationary
//! dataflow on the systolic array. … When there are insufficient
//! systolic arrays available, the layer is partitioned into smaller
//! sub-tasks that fit within the available hardware resources, which
//! are then executed sequentially."
//!
//! The tiling: an `s × s` array holds an `s`(input-channel·kernel
//! window) × `s`(output-channel) weight tile; input pixels stream
//! through, producing one output pixel per cycle per tile after a
//! `2s`-cycle fill/drain. A layer therefore needs
//! `⌈K/s⌉ · ⌈C_out/s⌉` tiles of `P + 2s` cycles each, run in waves of
//! `n_sa` parallel arrays — where `K` is the reduction dimension and
//! `P` the number of output positions.

use crate::params::HwParams;
use crate::tech28;
use claire_model::{Conv1d, Conv2d, Linear};
use serde::{Deserialize, Serialize};

/// Systolic-array dataflow.
///
/// The paper fixes weight-stationary ("Convolutional layers are
/// implemented using weight-stationary dataflow"); the
/// output-stationary alternative is provided for the dataflow
/// ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights pinned in PEs; inputs stream, outputs drain per cycle.
    /// Tile = (reduction × outputs); per-tile time ∝ output positions.
    #[default]
    WeightStationary,
    /// Partial sums pinned in PEs; weights/inputs stream. Tile =
    /// (positions × outputs); per-tile time ∝ reduction depth.
    OutputStationary,
}

/// Timing/energy results for one layer on one systolic module group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystolicCost {
    /// Total execution cycles (sequential waves of parallel tiles).
    pub cycles: u64,
    /// Total tile count — the node weight `w_N` ("the number of times
    /// the node needs to be executed to compute the entire layer").
    pub tiles: u64,
    /// Dynamic energy, pJ (MACs + SRAM traffic).
    pub energy_pj: f64,
}

/// The weight-stationary systolic-array model for a given hardware
/// design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArrayModel {
    hw: HwParams,
    dataflow: Dataflow,
}

impl SystolicArrayModel {
    /// Creates the model for `hw` with the paper's weight-stationary
    /// dataflow.
    pub fn new(hw: HwParams) -> Self {
        SystolicArrayModel {
            hw,
            dataflow: Dataflow::WeightStationary,
        }
    }

    /// Creates the model with an explicit dataflow.
    pub fn with_dataflow(hw: HwParams, dataflow: Dataflow) -> Self {
        SystolicArrayModel { hw, dataflow }
    }

    /// The underlying parameters.
    pub fn params(&self) -> HwParams {
        self.hw
    }

    /// The dataflow in effect.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Timing of the generic matrix-shaped workload, `(cycles, tiles)`.
    ///
    /// Pure integer tile/wave arithmetic — the single implementation
    /// shared by the exact costing path and the cycles-only
    /// lower-bound accessors ([`Self::conv2d_cycles`] and friends), so
    /// the two can never drift.
    fn matrix_timing(&self, reduction: u64, outputs: u64, positions: u64) -> (u64, u64) {
        let s = u64::from(self.hw.sa_size);
        let (tiles, per_tile) = match self.dataflow {
            Dataflow::WeightStationary => (
                reduction.div_ceil(s) * outputs.div_ceil(s),
                positions + 2 * s, // stream positions + fill/drain
            ),
            Dataflow::OutputStationary => (
                positions.div_ceil(s) * outputs.div_ceil(s),
                reduction + 2 * s, // stream the reduction + fill/drain
            ),
        };
        let waves = tiles.div_ceil(u64::from(self.hw.n_sa));
        (waves * per_tile, tiles)
    }

    /// Generic matrix-shaped workload: `reduction` × `outputs` weight
    /// matrix applied to `positions` input vectors.
    fn matrix(
        &self,
        reduction: u64,
        outputs: u64,
        positions: u64,
        macs: u64,
        io_bytes: u64,
    ) -> SystolicCost {
        let (cycles, tiles) = self.matrix_timing(reduction, outputs, positions);
        let energy_pj =
            macs as f64 * tech28::PE_ENERGY_PJ + io_bytes as f64 * tech28::SRAM_ENERGY_PJ_PER_BYTE;
        SystolicCost {
            cycles,
            tiles,
            energy_pj,
        }
    }

    /// Cost of a 2-D convolution (im2col mapping: reduction dimension
    /// is `C_in/groups · K_x · K_y`, repeated per group).
    pub fn conv2d(&self, c: &Conv2d) -> SystolicCost {
        let (reduction, outputs, positions, groups) = conv2d_shape(c);
        let (cycles, tiles) = self.matrix_timing(reduction, outputs, positions);
        let in_bytes = u64::from(c.ifm.0) * u64::from(c.ifm.1) * u64::from(c.in_channels);
        let io_bytes = in_bytes + c.output_elements();
        SystolicCost {
            cycles: cycles * groups,
            tiles: tiles * groups,
            energy_pj: c.macs() as f64 * tech28::PE_ENERGY_PJ
                + io_bytes as f64 * tech28::SRAM_ENERGY_PJ_PER_BYTE,
        }
    }

    /// Execution cycles of a 2-D convolution — [`Self::conv2d`]
    /// without any of the floating-point energy work.
    pub fn conv2d_cycles(&self, c: &Conv2d) -> u64 {
        let (reduction, outputs, positions, groups) = conv2d_shape(c);
        self.matrix_timing(reduction, outputs, positions).0 * groups
    }

    /// Cost of a 1-D convolution.
    pub fn conv1d(&self, c: &Conv1d) -> SystolicCost {
        let (reduction, outputs, positions) = conv1d_shape(c);
        let io_bytes = u64::from(c.length) * u64::from(c.in_channels) + c.output_elements();
        self.matrix(reduction, outputs, positions, c.macs(), io_bytes)
    }

    /// Execution cycles of a 1-D convolution.
    pub fn conv1d_cycles(&self, c: &Conv1d) -> u64 {
        let (reduction, outputs, positions) = conv1d_shape(c);
        self.matrix_timing(reduction, outputs, positions).0
    }

    /// Cost of a fully connected layer over `tokens` positions.
    pub fn linear(&self, l: &Linear) -> SystolicCost {
        let io_bytes = u64::from(l.in_features) * u64::from(l.tokens) + l.output_elements();
        self.matrix(
            u64::from(l.in_features),
            u64::from(l.out_features),
            u64::from(l.tokens),
            l.macs(),
            io_bytes,
        )
    }

    /// Execution cycles of a fully connected layer.
    pub fn linear_cycles(&self, l: &Linear) -> u64 {
        self.matrix_timing(
            u64::from(l.in_features),
            u64::from(l.out_features),
            u64::from(l.tokens),
        )
        .0
    }
}

/// The im2col matrix shape of a 2-D convolution:
/// `(reduction, outputs, positions, groups)`.
fn conv2d_shape(c: &Conv2d) -> (u64, u64, u64, u64) {
    let (ox, oy) = c.ofm();
    let positions = u64::from(ox) * u64::from(oy);
    let reduction =
        u64::from(c.in_channels / c.groups) * u64::from(c.kernel.0) * u64::from(c.kernel.1);
    let outputs = u64::from(c.out_channels / c.groups);
    (
        reduction.max(1),
        outputs.max(1),
        positions,
        u64::from(c.groups),
    )
}

/// The matrix shape of a 1-D convolution: `(reduction, outputs, positions)`.
fn conv1d_shape(c: &Conv1d) -> (u64, u64, u64) {
    (
        u64::from(c.in_channels) * u64::from(c.kernel),
        u64::from(c.out_channels),
        u64::from(c.output_length()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HwParams {
        HwParams::new(32, 32, 16, 16)
    }

    fn conv(ic: u32, oc: u32, k: u32, ifm: u32) -> Conv2d {
        Conv2d {
            in_channels: ic,
            out_channels: oc,
            kernel: (k, k),
            stride: (1, 1),
            padding: (k / 2, k / 2),
            ifm: (ifm, ifm),
            groups: 1,
        }
    }

    #[test]
    fn tile_count_matches_formula() {
        let m = SystolicArrayModel::new(hw());
        let c = conv(64, 128, 3, 28);
        let cost = m.conv2d(&c);
        // reduction = 64*9 = 576 -> 18 tiles; outputs 128 -> 4 tiles.
        assert_eq!(cost.tiles, 18 * 4);
    }

    #[test]
    fn cycles_scale_with_waves() {
        let m = SystolicArrayModel::new(hw());
        let c = conv(64, 128, 3, 28);
        // 72 tiles on 32 arrays = 3 waves of (28*28 + 64) cycles.
        assert_eq!(m.conv2d(&c).cycles, 3 * (28 * 28 + 64));
    }

    #[test]
    fn more_arrays_never_slower() {
        let small = SystolicArrayModel::new(HwParams::new(32, 16, 16, 16));
        let big = SystolicArrayModel::new(HwParams::new(32, 64, 16, 16));
        let c = conv(256, 256, 3, 14);
        assert!(big.conv2d(&c).cycles <= small.conv2d(&c).cycles);
    }

    #[test]
    fn energy_is_invariant_to_parallelism() {
        // Same MACs, same energy — parallelism trades latency, not work.
        let a = SystolicArrayModel::new(HwParams::new(32, 16, 16, 16));
        let b = SystolicArrayModel::new(HwParams::new(32, 64, 16, 16));
        let c = conv(128, 128, 3, 28);
        assert_eq!(a.conv2d(&c).energy_pj, b.conv2d(&c).energy_pj);
    }

    #[test]
    fn linear_tiles() {
        let m = SystolicArrayModel::new(hw());
        let l = Linear {
            in_features: 768,
            out_features: 3072,
            tokens: 128,
        };
        // 24 x 96 tiles, 2304 tiles / 32 arrays = 72 waves of 128+64.
        let cost = m.linear(&l);
        assert_eq!(cost.tiles, 24 * 96);
        assert_eq!(cost.cycles, 72 * (128 + 64));
    }

    #[test]
    fn depthwise_conv_handles_groups() {
        let m = SystolicArrayModel::new(hw());
        let mut c = conv(32, 32, 3, 56);
        c.groups = 32;
        let cost = m.conv2d(&c);
        // Each group is a 9x1 tile -> 1 tile per group, 32 groups.
        assert_eq!(cost.tiles, 32);
        assert!(cost.cycles > 0);
    }

    #[test]
    fn conv1d_positions_follow_stride() {
        let m = SystolicArrayModel::new(hw());
        let c = Conv1d {
            in_channels: 128,
            out_channels: 1280,
            kernel: 3,
            stride: 2,
            padding: 1,
            length: 3000,
        };
        let cost = m.conv1d(&c);
        // reduction 384 -> 12 tiles; outputs 1280 -> 40 tiles.
        assert_eq!(cost.tiles, 12 * 40);
        assert!(cost.energy_pj > c.macs() as f64 * 0.5);
    }

    #[test]
    fn dataflows_favour_their_stationary_dimension() {
        let ws = SystolicArrayModel::with_dataflow(hw(), Dataflow::WeightStationary);
        let os = SystolicArrayModel::with_dataflow(hw(), Dataflow::OutputStationary);
        // Single-token deep matmul: WS re-tiles the whole weight matrix
        // (128x128 tiles of 65 cycles = 512 waves) while OS streams the
        // reduction once per output tile (4 waves of 4160 cycles).
        let deep = Linear {
            in_features: 4096,
            out_features: 4096,
            tokens: 1,
        };
        assert!(os.linear(&deep).cycles < ws.linear(&deep).cycles);
        // Many positions over a small weight matrix (single array, to
        // isolate dataflow from tile-level parallelism): WS pins the
        // 2x2 tile set and streams all positions once; OS re-loads
        // partial-sum tiles per position block and pays the fill/drain
        // 1024 times.
        let one = HwParams::new(32, 1, 16, 16);
        let ws1 = SystolicArrayModel::with_dataflow(one, Dataflow::WeightStationary);
        let os1 = SystolicArrayModel::with_dataflow(one, Dataflow::OutputStationary);
        let wide = Linear {
            in_features: 64,
            out_features: 64,
            tokens: 16_384,
        };
        assert!(ws1.linear(&wide).cycles < os1.linear(&wide).cycles);
    }

    #[test]
    fn dataflow_does_not_change_energy() {
        let c = conv(128, 128, 3, 28);
        let ws = SystolicArrayModel::with_dataflow(hw(), Dataflow::WeightStationary);
        let os = SystolicArrayModel::with_dataflow(hw(), Dataflow::OutputStationary);
        assert_eq!(ws.conv2d(&c).energy_pj, os.conv2d(&c).energy_pj);
    }

    #[test]
    fn default_dataflow_is_weight_stationary() {
        assert_eq!(
            SystolicArrayModel::new(hw()).dataflow(),
            Dataflow::WeightStationary
        );
    }

    #[test]
    fn cycles_accessors_match_full_costing() {
        let c1 = Conv1d {
            in_channels: 128,
            out_channels: 1280,
            kernel: 3,
            stride: 2,
            padding: 1,
            length: 3000,
        };
        let l = Linear {
            in_features: 768,
            out_features: 3072,
            tokens: 128,
        };
        let mut dw = conv(32, 32, 3, 56);
        dw.groups = 32;
        for hwp in [
            HwParams::new(16, 4, 8, 8),
            HwParams::new(32, 32, 16, 16),
            HwParams::new(64, 1, 16, 16),
        ] {
            for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                let m = SystolicArrayModel::with_dataflow(hwp, df);
                let c2 = conv(64, 128, 3, 28);
                assert_eq!(m.conv2d(&c2).cycles, m.conv2d_cycles(&c2));
                assert_eq!(m.conv2d(&dw).cycles, m.conv2d_cycles(&dw));
                assert_eq!(m.conv1d(&c1).cycles, m.conv1d_cycles(&c1));
                assert_eq!(m.linear(&l).cycles, m.linear_cycles(&l));
            }
        }
    }

    #[test]
    fn bigger_array_fewer_tiles_but_more_fill() {
        let c = conv(64, 64, 3, 7); // small spatial extent
        let small = SystolicArrayModel::new(HwParams::new(16, 1, 16, 16));
        let big = SystolicArrayModel::new(HwParams::new(64, 1, 16, 16));
        let ts = small.conv2d(&c);
        let tb = big.conv2d(&c);
        assert!(tb.tiles < ts.tiles);
        // For tiny outputs the fill/drain dominates; the 64x64 array is
        // not proportionally faster.
        let ideal_speedup = ts.tiles as f64 / tb.tiles as f64;
        let real_speedup = ts.cycles as f64 / tb.cycles as f64;
        assert!(real_speedup < ideal_speedup);
    }
}
