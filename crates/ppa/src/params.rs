//! The tunable hardware parameter file (Input #2) and the DSE sweep
//! (Input #5 of Algorithm 1): systolic-array size, number of arrays,
//! number of activation units and number of pooling units.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One hardware design point — the adjustable parameters the paper
/// lists for the tunable hardware parameter file.
///
/// `n_act`/`n_pool` are per *kind*: a configuration whose workloads
/// need ReLU and GELU instantiates `n_act` ReLU units and `n_act` GELU
/// units (matching Table II, where each library row reports one count
/// next to its set of activation types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HwParams {
    /// Systolic array dimension (the array is `sa_size × sa_size` PEs).
    pub sa_size: u32,
    /// Number of systolic arrays per systolic module group.
    pub n_sa: u32,
    /// Number of activation units per activation kind present.
    pub n_act: u32,
    /// Number of pooling units per pooling kind present.
    pub n_pool: u32,
}

impl HwParams {
    /// Creates a design point.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero; use [`HwParams::try_new`] for a
    /// fallible constructor.
    pub fn new(sa_size: u32, n_sa: u32, n_act: u32, n_pool: u32) -> Self {
        match Self::try_new(sa_size, n_sa, n_act, n_pool) {
            Ok(hw) => hw,
            Err(e) => panic!("hardware parameters must be non-zero: {e}"),
        }
    }

    /// Fallible constructor validating all parameters are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`HwParamsError::Zero`] naming the offending field.
    pub fn try_new(
        sa_size: u32,
        n_sa: u32,
        n_act: u32,
        n_pool: u32,
    ) -> Result<Self, HwParamsError> {
        for (name, v) in [
            ("sa_size", sa_size),
            ("n_sa", n_sa),
            ("n_act", n_act),
            ("n_pool", n_pool),
        ] {
            if v == 0 {
                return Err(HwParamsError::Zero { field: name });
            }
        }
        Ok(HwParams {
            sa_size,
            n_sa,
            n_act,
            n_pool,
        })
    }

    /// Total PEs across one systolic module group.
    pub fn total_pes(&self) -> u64 {
        u64::from(self.sa_size) * u64::from(self.sa_size) * u64::from(self.n_sa)
    }
}

impl fmt::Display for HwParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} SA x{}, {} act, {} pool",
            self.sa_size, self.sa_size, self.n_sa, self.n_act, self.n_pool
        )
    }
}

/// Error validating [`HwParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwParamsError {
    /// A parameter was zero.
    Zero {
        /// Which field.
        field: &'static str,
    },
}

impl fmt::Display for HwParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwParamsError::Zero { field } => {
                write!(f, "hardware parameter `{field}` must be non-zero")
            }
        }
    }
}

impl std::error::Error for HwParamsError {}

/// The design-space-exploration sweep: the cartesian product of the
/// parameter axes. The default is 3 values per axis = 3⁴ = **81
/// configurations**, matching "The DSE run encompassed 81
/// configurations".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DseSpace {
    /// Candidate systolic-array dimensions.
    pub sa_sizes: Vec<u32>,
    /// Candidate array counts.
    pub n_sas: Vec<u32>,
    /// Candidate activation-unit counts.
    pub n_acts: Vec<u32>,
    /// Candidate pooling-unit counts.
    pub n_pools: Vec<u32>,
    /// Worker threads for sweeping this space. `None` (the default,
    /// and what older run-config files deserialize to) defers to the
    /// `CLAIRE_THREADS` environment variable and then to the machine's
    /// available parallelism.
    pub threads: Option<usize>,
}

impl Default for DseSpace {
    fn default() -> Self {
        DseSpace {
            sa_sizes: vec![16, 32, 64],
            n_sas: vec![16, 32, 64],
            n_acts: vec![8, 16, 32],
            n_pools: vec![8, 16, 32],
            threads: None,
        }
    }
}

impl DseSpace {
    /// A parameterised dense stress space: `per_axis` values on every
    /// axis, i.e. `per_axis⁴` design points (`dense(10)` = 10,000 —
    /// two orders of magnitude beyond the paper's 81). The axes extend
    /// well past the point where systolic-group area alone exceeds any
    /// realistic chiplet cap, so a large fraction of the space is
    /// area-infeasible — the regime the staged, constraint-pruned
    /// sweep is built for.
    ///
    /// # Panics
    ///
    /// Panics when `per_axis` is zero.
    pub fn dense(per_axis: usize) -> Self {
        assert!(
            per_axis > 0,
            "dense space needs at least one value per axis"
        );
        let axis = |step: u32| -> Vec<u32> { (1..=per_axis as u32).map(|i| i * step).collect() };
        DseSpace {
            sa_sizes: axis(12),
            n_sas: axis(8),
            n_acts: axis(4),
            n_pools: axis(4),
            threads: None,
        }
    }

    /// Number of configurations in the sweep.
    pub fn len(&self) -> usize {
        self.sa_sizes.len() * self.n_sas.len() * self.n_acts.len() * self.n_pools.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every configuration in deterministic axis order.
    /// Zero-valued axis entries (rejected by [`DseSpace::validate`])
    /// are skipped rather than panicking, keeping iteration total.
    pub fn iter(&self) -> impl Iterator<Item = HwParams> + '_ {
        self.sa_sizes.iter().flat_map(move |&s| {
            self.n_sas.iter().flat_map(move |&n| {
                self.n_acts.iter().flat_map(move |&a| {
                    self.n_pools
                        .iter()
                        .filter_map(move |&p| HwParams::try_new(s, n, a, p).ok())
                })
            })
        })
    }

    /// Checks the space describes at least one valid design point:
    /// every axis non-empty, every value non-zero.
    ///
    /// # Errors
    ///
    /// [`DseSpaceError`] naming the offending axis.
    pub fn validate(&self) -> Result<(), DseSpaceError> {
        for (axis, values) in [
            ("sa_sizes", &self.sa_sizes),
            ("n_sas", &self.n_sas),
            ("n_acts", &self.n_acts),
            ("n_pools", &self.n_pools),
        ] {
            if values.is_empty() {
                return Err(DseSpaceError::EmptyAxis { axis });
            }
            if values.contains(&0) {
                return Err(DseSpaceError::ZeroValue { axis });
            }
        }
        Ok(())
    }
}

/// Error validating a [`DseSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DseSpaceError {
    /// An axis has no candidate values, so the sweep is empty.
    EmptyAxis {
        /// Which axis.
        axis: &'static str,
    },
    /// An axis contains a zero, which no hardware point can realise.
    ZeroValue {
        /// Which axis.
        axis: &'static str,
    },
}

impl fmt::Display for DseSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseSpaceError::EmptyAxis { axis } => {
                write!(f, "DSE axis `{axis}` has no candidate values")
            }
            DseSpaceError::ZeroValue { axis } => {
                write!(f, "DSE axis `{axis}` contains a zero value")
            }
        }
    }
}

impl std::error::Error for DseSpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_is_81_configurations() {
        let space = DseSpace::default();
        assert_eq!(space.len(), 81);
        assert_eq!(space.iter().count(), 81);
    }

    #[test]
    fn iteration_is_deterministic_and_unique() {
        let space = DseSpace::default();
        let a: Vec<_> = space.iter().collect();
        let b: Vec<_> = space.iter().collect();
        assert_eq!(a, b);
        let mut set: Vec<_> = a.clone();
        set.dedup();
        assert_eq!(set.len(), 81);
    }

    #[test]
    fn dense_space_is_per_axis_to_the_fourth() {
        let space = DseSpace::dense(10);
        assert_eq!(space.len(), 10_000);
        assert_eq!(space.sa_sizes.len(), 10);
        assert!(space
            .iter()
            .all(|hw| hw.sa_size > 0 && hw.n_sa > 0 && hw.n_act > 0 && hw.n_pool > 0));
        let small = DseSpace::dense(2);
        assert_eq!(small.len(), 16);
    }

    #[test]
    fn zero_parameter_rejected() {
        let err = HwParams::try_new(32, 0, 16, 16).unwrap_err();
        assert_eq!(err, HwParamsError::Zero { field: "n_sa" });
        assert!(err.to_string().contains("n_sa"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_parameter_panics_in_infallible_constructor() {
        HwParams::new(0, 32, 16, 16);
    }

    #[test]
    fn degenerate_spaces_fail_validation() {
        assert!(DseSpace::default().validate().is_ok());
        let empty = DseSpace {
            n_acts: vec![],
            ..DseSpace::default()
        };
        assert_eq!(
            empty.validate().unwrap_err(),
            DseSpaceError::EmptyAxis { axis: "n_acts" }
        );
        let zeroed = DseSpace {
            sa_sizes: vec![16, 0],
            ..DseSpace::default()
        };
        assert_eq!(
            zeroed.validate().unwrap_err(),
            DseSpaceError::ZeroValue { axis: "sa_sizes" }
        );
        assert!(zeroed.validate().unwrap_err().to_string().contains("zero"));
        // Iteration skips the invalid points instead of panicking:
        // [16, 0] yields exactly the points [16] would.
        let valid_only = DseSpace {
            sa_sizes: vec![16],
            ..DseSpace::default()
        };
        assert_eq!(zeroed.iter().count(), valid_only.iter().count());
    }

    #[test]
    fn total_pes() {
        assert_eq!(HwParams::new(32, 32, 16, 16).total_pes(), 32 * 32 * 32);
    }

    #[test]
    fn display_is_informative() {
        let s = HwParams::new(32, 64, 16, 8).to_string();
        assert!(s.contains("32x32"));
        assert!(s.contains("x64"));
    }

    #[test]
    fn serde_round_trip() {
        let space = DseSpace::default();
        let json = serde_json::to_string(&space).unwrap();
        let back: DseSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(space, back);
    }
}
