//! TSMC-28nm-class PPA constants for the hardware building blocks.
//!
//! The paper obtains these values from HISIM's synthesized data (PE,
//! activation functions), NeuroSim (pooling) and a stochastic-computing
//! tanh implementation scaled to 28 nm. Those databases are not
//! redistributable, so this module substitutes constants of the same
//! magnitude, each annotated with its public provenance. Every CLAIRE
//! result is driven by *relative* PPA (rankings, ratios, constraint
//! checks), which is insensitive to calibration error within a wide
//! band — see DESIGN.md § substitutions.

/// Clock frequency of all compute units, Hz. HISIM-style accelerators
/// at 28 nm close timing near 1 GHz.
pub const CLOCK_HZ: f64 = 1.0e9;

/// Area of one 8-bit MAC processing element with pipeline registers,
/// mm² (≈ 950 µm²; 28-nm synthesis of an 8×8 multiplier + 20-bit
/// accumulator lands at 700–1200 µm² depending on register depth).
pub const PE_AREA_MM2: f64 = 950.0e-6;

/// Energy of one 8-bit MAC including operand forwarding, pJ
/// (Horowitz ISSCC'14 gives ≈ 0.2 pJ for the bare INT8 MAC at 45 nm;
/// with registers and clocking at 28 nm a systolic PE is ≈ 0.8 pJ).
pub const PE_ENERGY_PJ: f64 = 0.8;

/// Systolic-array peripheral overhead (controller, accumulators,
/// input skew registers) as a fraction of raw PE-array area.
pub const SA_PERIPHERAL_OVERHEAD: f64 = 0.15;

/// Per-array local SRAM buffer, bytes (weights + activations tiles).
pub const SA_SRAM_BYTES: f64 = 128.0 * 1024.0;

/// 28-nm SRAM density, mm² per byte (≈ 0.55 mm²/MB with periphery).
pub const SRAM_AREA_MM2_PER_BYTE: f64 = 0.55 / (1024.0 * 1024.0);

/// SRAM access energy, pJ per byte (28-nm 128-KB macro ≈ 1.2 pJ/B).
pub const SRAM_ENERGY_PJ_PER_BYTE: f64 = 1.2;

/// Per-kind activation-unit PPA: (area mm², energy pJ per element).
///
/// A ReLU is a comparator; ReLU6 adds a clamp; GELU and SiLU carry a
/// piecewise/tanh-based non-linear core (the paper's tanh block from
/// stochastic computing scaled to 28 nm); Tanh is that core alone.
pub mod activation {
    /// ReLU comparator unit.
    pub const RELU: (f64, f64) = (0.0008, 0.08);
    /// ReLU6 clamp unit.
    pub const RELU6: (f64, f64) = (0.0009, 0.09);
    /// GELU unit (tanh core + scaling datapath).
    pub const GELU: (f64, f64) = (0.0120, 2.40);
    /// SiLU/swish unit (sigmoid core + multiplier).
    pub const SILU: (f64, f64) = (0.0100, 2.10);
    /// Stand-alone tanh core.
    pub const TANH: (f64, f64) = (0.0080, 1.80);
}

/// Per-kind pooling-unit PPA: (area mm², energy pJ per input element).
/// NeuroSim-class comparator/adder trees.
pub mod pooling {
    /// Sliding-window max pooling.
    pub const MAX_POOL: (f64, f64) = (0.0020, 0.20);
    /// Sliding-window average pooling (adder tree + divider).
    pub const AVG_POOL: (f64, f64) = (0.0030, 0.30);
    /// Adaptive average pooling (adds output-size sequencing).
    pub const ADAPTIVE_AVG_POOL: (f64, f64) = (0.0035, 0.32);
    /// FPN last-level max pooling.
    pub const LAST_LEVEL_MAX_POOL: (f64, f64) = (0.0022, 0.22);
    /// RoIAlign (bilinear sampling datapath).
    pub const ROI_ALIGN: (f64, f64) = (0.0060, 0.90);
}

/// Flatten unit: an address-generating buffer drain.
/// (area mm², energy pJ per element moved).
pub const FLATTEN: (f64, f64) = (0.0150, 0.15);

/// Permute unit: a transposing buffer (SRAM + crossbar).
/// (area mm², energy pJ per element moved).
pub const PERMUTE: (f64, f64) = (0.0250, 0.25);

/// Elements a flatten/permute unit moves per cycle.
pub const RESHAPE_ELEMENTS_PER_CYCLE: f64 = 32.0;

/// Static (leakage) power density of active 28-nm logic, W/mm²
/// (high-density standard-cell logic at nominal voltage/temperature
/// leaks on the order of tens of mW/mm²).
///
/// The paper's energy numbers are dynamic-only ("power gating for
/// underutilized units was not applied" and energy still varied by
/// only 0.2 %); leakage is modelled here for the power-gating
/// ablation bench.
pub const LEAKAGE_W_PER_MM2: f64 = 0.025;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants are the subject
    fn constants_are_positive_and_sane() {
        assert!(PE_AREA_MM2 > 1e-5 && PE_AREA_MM2 < 1e-2);
        assert!(PE_ENERGY_PJ > 0.05 && PE_ENERGY_PJ < 10.0);
        assert!(CLOCK_HZ >= 1e8);
        for &(a, e) in &[
            activation::RELU,
            activation::RELU6,
            activation::GELU,
            activation::SILU,
            activation::TANH,
            pooling::MAX_POOL,
            pooling::AVG_POOL,
            pooling::ADAPTIVE_AVG_POOL,
            pooling::LAST_LEVEL_MAX_POOL,
            pooling::ROI_ALIGN,
            FLATTEN,
            PERMUTE,
        ] {
            assert!(a > 0.0 && a < 1.0, "area {a}");
            assert!(e > 0.0 && e < 100.0, "energy {e}");
        }
    }

    #[test]
    fn nonlinear_units_cost_more_than_relu() {
        // The GELU/SiLU/Tanh family must dominate ReLU in both area and
        // energy — this ordering is what makes transformer chiplets
        // different from CNN chiplets.
        assert!(activation::GELU.0 > activation::RELU.0 * 5.0);
        assert!(activation::GELU.1 > activation::RELU.1 * 5.0);
        assert!(activation::TANH.0 < activation::GELU.0);
    }

    #[test]
    fn a_32x32_array_is_about_one_mm2() {
        let raw = 32.0 * 32.0 * PE_AREA_MM2;
        assert!((0.5..2.0).contains(&raw), "{raw}");
    }
}
