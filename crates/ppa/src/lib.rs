//! # claire-ppa — analytical PPA models and hardware configuration
//!
//! Inputs #2 and #3 of the CLAIRE framework (DATE 2025):
//!
//! * [`tech28`] — the PPA configuration values for the hardware
//!   building blocks (systolic-array PE, activation units, pooling
//!   units, tanh core) at a TSMC-28nm-class node. The paper sources
//!   these from HISIM/NeuroSim synthesis; we substitute documented
//!   constants of the same magnitude (see DESIGN.md — only *relative*
//!   PPA drives every result).
//! * [`HwParams`] / [`DseSpace`] — the tunable hardware parameter file:
//!   systolic-array size, number of arrays, number of activation and
//!   pooling units; the default sweep is the paper's 81 configurations.
//! * [`layer_cost`] / [`unit_area_mm2`] — parameterisable analytical
//!   models that turn layer metadata + hardware parameters into
//!   latency, energy and area for each graph node.
//!
//! # Example
//!
//! ```
//! use claire_model::{Conv2d, LayerKind};
//! use claire_ppa::{layer_cost, HwParams};
//!
//! let hw = HwParams::new(32, 32, 16, 16);
//! let conv = LayerKind::Conv2d(Conv2d {
//!     in_channels: 64, out_channels: 64,
//!     kernel: (3, 3), stride: (1, 1), padding: (1, 1),
//!     ifm: (56, 56), groups: 1,
//! });
//! let cost = layer_cost(&conv, &hw);
//! assert!(cost.cycles > 0 && cost.energy_pj > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod analytical;
mod batch;
mod memory;
mod params;
pub mod scaling;
mod space;
mod systolic;
pub mod tech28;
pub mod thermal;

pub use analytical::{config_area_mm2, layer_cost, layer_cycles, unit_area_mm2, LayerCost};
pub use batch::{BatchSum, LayerBatch};
pub use memory::{layer_weight_bytes, MemoryModel};
pub use params::{DseSpace, DseSpaceError, HwParams, HwParamsError};
pub use scaling::{NodeScaling, TechNode};
pub use space::{space_points, DesignSpace, GridAxis, GridSpace};
pub use systolic::{Dataflow, SystolicArrayModel};
pub use thermal::ThermalModel;
