//! Node-level analytical PPA evaluation (Input #3): latency, energy
//! and area of each hardware unit, parameterised by [`HwParams`].

use crate::params::HwParams;
use crate::systolic::{SystolicArrayModel, SystolicCost};
use crate::tech28;
use claire_model::{
    Activation, ActivationKind, Flatten, LayerKind, OpClass, Permute, Pooling, PoolingKind,
};

/// Latency/energy of executing one layer on its module group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Execution cycles at [`tech28::CLOCK_HZ`].
    pub cycles: u64,
    /// Dynamic energy, pJ.
    pub energy_pj: f64,
    /// Number of sub-task executions (node weight `w_N` contribution).
    pub executions: u64,
}

impl LayerCost {
    /// Latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.cycles as f64 / tech28::CLOCK_HZ
    }
}

fn activation_ppa(kind: ActivationKind) -> (f64, f64) {
    match kind {
        ActivationKind::Relu => tech28::activation::RELU,
        ActivationKind::Relu6 => tech28::activation::RELU6,
        ActivationKind::Gelu => tech28::activation::GELU,
        ActivationKind::Silu => tech28::activation::SILU,
        ActivationKind::Tanh => tech28::activation::TANH,
    }
}

fn pooling_ppa(kind: PoolingKind) -> (f64, f64) {
    match kind {
        PoolingKind::MaxPool => tech28::pooling::MAX_POOL,
        PoolingKind::AvgPool => tech28::pooling::AVG_POOL,
        PoolingKind::AdaptiveAvgPool => tech28::pooling::ADAPTIVE_AVG_POOL,
        PoolingKind::LastLevelMaxPool => tech28::pooling::LAST_LEVEL_MAX_POOL,
        PoolingKind::RoiAlign => tech28::pooling::ROI_ALIGN,
    }
}

/// Converts a systolic tiling result into a [`LayerCost`].
pub(crate) fn systolic_layer_cost(s: SystolicCost) -> LayerCost {
    LayerCost {
        cycles: s.cycles,
        energy_pj: s.energy_pj,
        executions: s.tiles,
    }
}

/// Execution cycles of one activation layer — the integer core shared
/// by [`activation_cost`] and the cycles-only lower-bound kernel, so
/// the two can never drift.
pub(crate) fn activation_cycles(a: &Activation, hw: &HwParams) -> u64 {
    a.elements.div_ceil(u64::from(hw.n_act))
}

/// Execution cycles of one pooling layer (see [`activation_cycles`]).
pub(crate) fn pooling_cycles(p: &Pooling, hw: &HwParams) -> u64 {
    p.input_elements.div_ceil(u64::from(hw.n_pool))
}

/// Execution cycles of a reshape drain (flatten / permute).
pub(crate) fn reshape_cycles(elements: u64) -> u64 {
    (elements as f64 / tech28::RESHAPE_ELEMENTS_PER_CYCLE).ceil() as u64
}

/// Cost of one activation layer: `elements` stream through the
/// `n_act` units of its kind, one element per cycle per unit.
pub(crate) fn activation_cost(a: &Activation, hw: &HwParams) -> LayerCost {
    let (_, e) = activation_ppa(a.kind);
    let cycles = activation_cycles(a, hw);
    LayerCost {
        cycles,
        energy_pj: a.elements as f64 * e,
        executions: cycles,
    }
}

/// Cost of one pooling layer across the `n_pool` units of its kind.
pub(crate) fn pooling_cost(p: &Pooling, hw: &HwParams) -> LayerCost {
    let (_, e) = pooling_ppa(p.kind);
    let cycles = pooling_cycles(p, hw);
    LayerCost {
        cycles,
        energy_pj: p.input_elements as f64 * e,
        executions: cycles,
    }
}

/// Cost of a flatten (reshape drain) layer.
pub(crate) fn flatten_cost(f: &Flatten) -> LayerCost {
    let cycles = reshape_cycles(f.elements);
    LayerCost {
        cycles,
        energy_pj: f.elements as f64 * tech28::FLATTEN.1,
        executions: cycles,
    }
}

/// Cost of a permute (dimension reordering) layer.
pub(crate) fn permute_cost(p: &Permute) -> LayerCost {
    let cycles = reshape_cycles(p.elements);
    LayerCost {
        cycles,
        energy_pj: p.elements as f64 * tech28::PERMUTE.1,
        executions: cycles,
    }
}

/// Evaluates one layer on the design point `hw`.
///
/// Systolic layers use the weight-stationary tiling model; activation
/// and pooling layers stream one element per cycle per unit across the
/// `n_act`/`n_pool` units of their kind; flatten/permute drain
/// [`tech28::RESHAPE_ELEMENTS_PER_CYCLE`] elements per cycle.
///
/// The per-family formulas are shared with [`crate::LayerBatch`], the
/// batched struct-of-arrays kernel, so the two can never drift apart.
pub fn layer_cost(layer: &LayerKind, hw: &HwParams) -> LayerCost {
    let sa = SystolicArrayModel::new(*hw);
    match layer {
        LayerKind::Conv2d(c) => systolic_layer_cost(sa.conv2d(c)),
        LayerKind::Conv1d(c) => systolic_layer_cost(sa.conv1d(c)),
        LayerKind::Linear(l) => systolic_layer_cost(sa.linear(l)),
        LayerKind::Activation(a) => activation_cost(a, hw),
        LayerKind::Pooling(p) => pooling_cost(p, hw),
        LayerKind::Flatten(f) => flatten_cost(f),
        LayerKind::Permute(p) => permute_cost(p),
    }
}

/// Execution cycles of one layer on the design point `hw` —
/// [`layer_cost`] without any of the floating-point energy work.
///
/// Every arm routes through the same integer cycle helpers the exact
/// costing uses, so `layer_cycles(l, hw) == layer_cost(l, hw).cycles`
/// bit for bit. This is the per-layer core of the compute-only
/// latency **lower bound**: summed over a model it gives the cycles
/// the compute units alone need, ignoring all inter-chiplet transfer
/// latency (i.e. latency at infinite bandwidth).
pub fn layer_cycles(layer: &LayerKind, hw: &HwParams) -> u64 {
    let sa = SystolicArrayModel::new(*hw);
    match layer {
        LayerKind::Conv2d(c) => sa.conv2d_cycles(c),
        LayerKind::Conv1d(c) => sa.conv1d_cycles(c),
        LayerKind::Linear(l) => sa.linear_cycles(l),
        LayerKind::Activation(a) => activation_cycles(a, hw),
        LayerKind::Pooling(p) => pooling_cycles(p, hw),
        LayerKind::Flatten(f) => reshape_cycles(f.elements),
        LayerKind::Permute(p) => reshape_cycles(p.elements),
    }
}

/// Silicon area of one module group of class `class` under `hw`, mm².
///
/// A systolic module group instantiates `n_sa` arrays of
/// `sa_size × sa_size` PEs with peripheral overhead and a local SRAM
/// tile buffer per array; activation/pooling groups instantiate
/// `n_act`/`n_pool` units of their kind; flatten/permute are single
/// buffer units.
pub fn unit_area_mm2(class: OpClass, hw: &HwParams) -> f64 {
    match class {
        OpClass::Conv2d | OpClass::Conv1d | OpClass::Linear => {
            let pes = hw.total_pes() as f64;
            let array_area = pes * tech28::PE_AREA_MM2 * (1.0 + tech28::SA_PERIPHERAL_OVERHEAD);
            let sram = f64::from(hw.n_sa) * tech28::SA_SRAM_BYTES * tech28::SRAM_AREA_MM2_PER_BYTE;
            array_area + sram
        }
        OpClass::Activation(a) => f64::from(hw.n_act) * activation_ppa(a).0,
        OpClass::Pooling(p) => f64::from(hw.n_pool) * pooling_ppa(p).0,
        OpClass::Flatten => tech28::FLATTEN.0,
        OpClass::Permute => tech28::PERMUTE.0,
    }
}

/// Total silicon area of a configuration: the sum of its module
/// groups' areas (NoC router area is added by the NoC model per node).
pub fn config_area_mm2<'a, I>(classes: I, hw: &HwParams) -> f64
where
    I: IntoIterator<Item = &'a OpClass>,
{
    classes.into_iter().map(|&c| unit_area_mm2(c, hw)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::{Activation, Conv2d, Flatten, Linear, Pooling};

    fn hw() -> HwParams {
        HwParams::new(32, 32, 16, 16)
    }

    #[test]
    fn systolic_group_area_in_expected_band() {
        // 32x32x32: ~36 mm^2 of PE + ~2.2 mm^2 SRAM.
        let a = unit_area_mm2(OpClass::Conv2d, &hw());
        assert!((30.0..45.0).contains(&a), "{a}");
    }

    #[test]
    fn config_area_within_paper_band() {
        // A CNN-style configuration must land in the paper's
        // "realistic area range of 10-100 mm^2".
        let classes = [
            OpClass::Conv2d,
            OpClass::Activation(ActivationKind::Relu),
            OpClass::Pooling(PoolingKind::MaxPool),
        ];
        let a = config_area_mm2(classes.iter(), &hw());
        assert!((10.0..100.0).contains(&a), "{a}");
    }

    #[test]
    fn oversized_config_exceeds_chip_limit() {
        let big = HwParams::new(64, 64, 32, 32);
        let a = unit_area_mm2(OpClass::Linear, &big);
        assert!(a > 100.0, "{a}");
    }

    #[test]
    fn activation_latency_uses_unit_count() {
        let act = LayerKind::Activation(Activation {
            kind: ActivationKind::Relu,
            elements: 1000,
        });
        let c = layer_cost(&act, &hw());
        assert_eq!(c.cycles, 1000_u64.div_ceil(16));
    }

    #[test]
    fn pooling_energy_scales_with_inputs() {
        let pool = LayerKind::Pooling(Pooling {
            kind: PoolingKind::MaxPool,
            input_elements: 10_000,
            output_elements: 2_500,
        });
        let c = layer_cost(&pool, &hw());
        assert!((c.energy_pj - 10_000.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn flatten_is_cheap_but_not_free() {
        let f = LayerKind::Flatten(Flatten { elements: 4096 });
        let c = layer_cost(&f, &hw());
        assert_eq!(c.cycles, 4096 / 32);
        assert!(c.energy_pj > 0.0);
    }

    #[test]
    fn latency_seconds_conversion() {
        let l = LayerKind::Linear(Linear {
            in_features: 32,
            out_features: 32,
            tokens: 1,
        });
        let c = layer_cost(&l, &hw());
        assert!((c.latency_s() - c.cycles as f64 / 1e9).abs() < 1e-18);
    }

    #[test]
    fn conv_cost_decreases_with_more_arrays() {
        let conv = LayerKind::Conv2d(Conv2d {
            in_channels: 256,
            out_channels: 256,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            ifm: (14, 14),
            groups: 1,
        });
        let small = layer_cost(&conv, &HwParams::new(32, 16, 16, 16));
        let big = layer_cost(&conv, &HwParams::new(32, 64, 16, 16));
        assert!(big.cycles < small.cycles);
    }

    #[test]
    fn layer_cycles_matches_layer_cost() {
        let layers = [
            LayerKind::Conv2d(Conv2d {
                in_channels: 64,
                out_channels: 128,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                ifm: (28, 28),
                groups: 1,
            }),
            LayerKind::Linear(Linear {
                in_features: 768,
                out_features: 3072,
                tokens: 128,
            }),
            LayerKind::Activation(Activation {
                kind: ActivationKind::Gelu,
                elements: 1_000,
            }),
            LayerKind::Pooling(Pooling {
                kind: PoolingKind::MaxPool,
                input_elements: 10_000,
                output_elements: 2_500,
            }),
            LayerKind::Flatten(Flatten { elements: 4097 }),
        ];
        for hwp in [HwParams::new(16, 4, 8, 8), HwParams::new(64, 8, 32, 4)] {
            for l in &layers {
                assert_eq!(layer_cycles(l, &hwp), layer_cost(l, &hwp).cycles, "{l:?}");
            }
        }
    }

    #[test]
    fn gelu_energy_dominates_relu() {
        let mk = |kind| {
            layer_cost(
                &LayerKind::Activation(Activation {
                    kind,
                    elements: 1_000,
                }),
                &hw(),
            )
            .energy_pj
        };
        assert!(mk(ActivationKind::Gelu) > 10.0 * mk(ActivationKind::Relu));
    }
}
