//! Off-chip memory (weight-streaming) model.
//!
//! The paper's latency model is compute-only: every weight is assumed
//! resident next to its systolic array. That is defensible for the
//! CNN-scale algorithms but not for the billion-parameter LLMs in the
//! training set, whose single-inference latency is bounded by weight
//! bandwidth, not MACs. This model adds that bound as an *option*
//! (`EvalOptions`-style opt-in in `claire-core`), so the paper's
//! numbers stay reproducible while the memory-wall ablation can
//! quantify what they omit.

use claire_model::LayerKind;
use serde::{Deserialize, Serialize};

/// An off-chip memory system streaming weights to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Sustained bandwidth, bytes per compute-clock cycle (at the
    /// 1-GHz model clock, 1 B/cycle = 1 GB/s).
    pub bytes_per_cycle: f64,
    /// Access energy, pJ per byte.
    pub energy_pj_per_byte: f64,
}

impl MemoryModel {
    /// A single DDR4-3200 channel: 25.6 GB/s, ≈ 15 pJ/B.
    pub fn ddr4_3200() -> Self {
        MemoryModel {
            bytes_per_cycle: 25.6,
            energy_pj_per_byte: 15.0,
        }
    }

    /// One HBM2E stack: 460 GB/s, ≈ 4 pJ/B.
    pub fn hbm2e() -> Self {
        MemoryModel {
            bytes_per_cycle: 460.0,
            energy_pj_per_byte: 4.0,
        }
    }

    /// Cycles to stream `bytes` of weights (double-buffered behind
    /// compute; the caller takes `max(compute, streaming)`).
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Energy to stream `bytes`, pJ.
    pub fn stream_energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_pj_per_byte
    }
}

/// Weight bytes a layer must stream at 8-bit precision (its trainable
/// parameters; zero for activation/pooling/reshape layers).
pub fn layer_weight_bytes(kind: &LayerKind) -> u64 {
    match kind {
        LayerKind::Conv2d(c) => c.params(),
        LayerKind::Conv1d(c) => c.params(),
        LayerKind::Linear(l) => l.params(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::Linear;

    #[test]
    fn presets_are_ordered() {
        assert!(
            MemoryModel::hbm2e().bytes_per_cycle
                > 10.0 * MemoryModel::ddr4_3200().bytes_per_cycle / 2.0
        );
        assert!(
            MemoryModel::hbm2e().energy_pj_per_byte < MemoryModel::ddr4_3200().energy_pj_per_byte
        );
    }

    #[test]
    fn stream_cycles_round_up() {
        let m = MemoryModel {
            bytes_per_cycle: 32.0,
            energy_pj_per_byte: 1.0,
        };
        assert_eq!(m.stream_cycles(64), 2);
        assert_eq!(m.stream_cycles(65), 3);
        assert_eq!(m.stream_cycles(0), 0);
    }

    #[test]
    fn weight_bytes_follow_params() {
        let l = LayerKind::Linear(Linear {
            in_features: 4096,
            out_features: 4096,
            tokens: 1,
        });
        assert_eq!(layer_weight_bytes(&l), 4096 * 4096 + 4096);
        let act = LayerKind::Activation(claire_model::Activation {
            kind: claire_model::ActivationKind::Relu,
            elements: 100,
        });
        assert_eq!(layer_weight_bytes(&act), 0);
    }

    #[test]
    fn llama_scale_weights_take_hundreds_of_ms_on_ddr4() {
        // 8 GB of weights at 25.6 GB/s ≈ 0.31 s — the memory wall the
        // compute-only model hides.
        let m = MemoryModel::ddr4_3200();
        let cycles = m.stream_cycles(8_000_000_000);
        let seconds = cycles as f64 / 1e9;
        assert!((0.25..0.40).contains(&seconds), "{seconds}");
    }
}
