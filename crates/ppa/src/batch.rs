//! Batched struct-of-arrays layer-cost kernel.
//!
//! The DSE sweep prices the *same* layer list under dozens to
//! thousands of hardware points, and real models repeat identical
//! layer shapes heavily (a transformer is dozens of bit-identical
//! blocks). Per-layer evaluation pays the `LayerKind` dispatch, a
//! fresh [`SystolicArrayModel`] and — when memoized per layer — a
//! locked cache lookup for every repetition, which PR 2's profiling
//! showed costs as much as the analytical kernel itself.
//!
//! [`LayerBatch`] preprocesses a layer list **once**: identical shapes
//! are deduplicated and the distinct shapes are regrouped by unit
//! family into homogeneous pools (struct-of-arrays). Evaluating a
//! hardware point then walks each pool in a tight, dispatch-free loop
//! (one [`SystolicArrayModel`] for the whole batch) and replays the
//! original execution order through a precomputed index sequence.
//!
//! **Bit-exactness.** The per-family formulas are the very functions
//! [`crate::layer_cost`] dispatches to, and the accumulation in
//! [`LayerBatch::compute_sum`] adds per-layer values in the original
//! execution order — the identical sequence of `f64` additions the
//! naive per-layer walk performs — so batched totals are bit-identical
//! to the reference, not merely close.

use crate::analytical::{
    activation_cost, activation_cycles, flatten_cost, permute_cost, pooling_cost, pooling_cycles,
    reshape_cycles, systolic_layer_cost, LayerCost,
};
use crate::params::HwParams;
use crate::systolic::SystolicArrayModel;
use claire_model::{Activation, Conv1d, Conv2d, Flatten, LayerKind, Linear, Permute, Pooling};
use std::collections::HashMap;

/// Whole-batch compute totals under one hardware point — the batched
/// equivalent of summing [`crate::layer_cost`] over the layer list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSum {
    /// Total compute cycles across all layers.
    pub cycles: u64,
    /// Total dynamic compute energy, pJ, accumulated in execution
    /// order (bit-identical to the per-layer reference walk).
    pub energy_pj: f64,
}

/// A preprocessed layer list: deduplicated shapes in per-family
/// struct-of-arrays pools plus the execution-order replay sequence.
///
/// Build once per distinct layer structure (the engine interns batches
/// by structural content), evaluate per hardware point.
#[derive(Debug, Clone, Default)]
pub struct LayerBatch {
    // Homogeneous pools of *distinct* layer shapes, in first-seen
    // order within each family. Slot numbering is pool-concatenation
    // order: conv2d, conv1d, linear, act, pool, flatten, permute.
    conv2d: Vec<Conv2d>,
    conv1d: Vec<Conv1d>,
    linear: Vec<Linear>,
    act: Vec<Activation>,
    pool: Vec<Pooling>,
    flatten: Vec<Flatten>,
    permute: Vec<Permute>,
    /// Global slot index per layer, in execution order.
    seq: Vec<u32>,
}

impl LayerBatch {
    /// Preprocesses `kinds` (a model's layer sequence, in execution
    /// order) into the batched form.
    pub fn from_kinds<'a, I>(kinds: I) -> Self
    where
        I: IntoIterator<Item = &'a LayerKind>,
    {
        // First pass: dedupe into pools, recording (family, pool
        // index) per layer; global slots are assigned afterwards once
        // every pool size is known.
        let mut batch = LayerBatch::default();
        let mut interned: HashMap<LayerKind, (u8, u32)> = HashMap::new();
        let mut pairs: Vec<(u8, u32)> = Vec::new();
        for kind in kinds {
            let slot = *interned.entry(*kind).or_insert_with(|| match kind {
                LayerKind::Conv2d(c) => {
                    batch.conv2d.push(*c);
                    (0, batch.conv2d.len() as u32 - 1)
                }
                LayerKind::Conv1d(c) => {
                    batch.conv1d.push(*c);
                    (1, batch.conv1d.len() as u32 - 1)
                }
                LayerKind::Linear(l) => {
                    batch.linear.push(*l);
                    (2, batch.linear.len() as u32 - 1)
                }
                LayerKind::Activation(a) => {
                    batch.act.push(*a);
                    (3, batch.act.len() as u32 - 1)
                }
                LayerKind::Pooling(p) => {
                    batch.pool.push(*p);
                    (4, batch.pool.len() as u32 - 1)
                }
                LayerKind::Flatten(f) => {
                    batch.flatten.push(*f);
                    (5, batch.flatten.len() as u32 - 1)
                }
                LayerKind::Permute(p) => {
                    batch.permute.push(*p);
                    (6, batch.permute.len() as u32 - 1)
                }
            });
            pairs.push(slot);
        }
        let bases = batch.family_bases();
        batch.seq = pairs
            .into_iter()
            .map(|(family, idx)| bases[family as usize] + idx)
            .collect();
        batch
    }

    /// Global slot offset of each family under pool-concatenation
    /// order.
    fn family_bases(&self) -> [u32; 7] {
        let mut bases = [0u32; 7];
        let lens = [
            self.conv2d.len(),
            self.conv1d.len(),
            self.linear.len(),
            self.act.len(),
            self.pool.len(),
            self.flatten.len(),
            self.permute.len(),
        ];
        let mut acc = 0u32;
        for (base, len) in bases.iter_mut().zip(lens) {
            *base = acc;
            acc += len as u32;
        }
        bases
    }

    /// Number of layers in the original sequence.
    pub fn layer_count(&self) -> usize {
        self.seq.len()
    }

    /// Number of distinct layer shapes (cost evaluations per point).
    pub fn slot_count(&self) -> usize {
        self.conv2d.len()
            + self.conv1d.len()
            + self.linear.len()
            + self.act.len()
            + self.pool.len()
            + self.flatten.len()
            + self.permute.len()
    }

    /// Number of non-empty layer-family pools — i.e. how many of the
    /// dispatch-free kernel loops a [`LayerBatch::costs_into`] pass
    /// actually runs.
    pub fn family_count(&self) -> usize {
        [
            !self.conv2d.is_empty(),
            !self.conv1d.is_empty(),
            !self.linear.is_empty(),
            !self.act.is_empty(),
            !self.pool.is_empty(),
            !self.flatten.is_empty(),
            !self.permute.is_empty(),
        ]
        .iter()
        .filter(|&&x| x)
        .count()
    }

    /// True when the batch holds no layers.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Evaluates every distinct shape under `hw` into `out`
    /// (slot-ordered; cleared first). One dispatch-free loop per pool,
    /// sharing a single [`SystolicArrayModel`] across the batch.
    pub fn costs_into(&self, hw: &HwParams, out: &mut Vec<LayerCost>) {
        out.clear();
        out.reserve(self.slot_count());
        let sa = SystolicArrayModel::new(*hw);
        out.extend(
            self.conv2d
                .iter()
                .map(|c| systolic_layer_cost(sa.conv2d(c))),
        );
        out.extend(
            self.conv1d
                .iter()
                .map(|c| systolic_layer_cost(sa.conv1d(c))),
        );
        out.extend(
            self.linear
                .iter()
                .map(|l| systolic_layer_cost(sa.linear(l))),
        );
        out.extend(self.act.iter().map(|a| activation_cost(a, hw)));
        out.extend(self.pool.iter().map(|p| pooling_cost(p, hw)));
        out.extend(self.flatten.iter().map(flatten_cost));
        out.extend(self.permute.iter().map(permute_cost));
    }

    /// Per-distinct-shape costs under `hw`, slot-ordered.
    pub fn costs(&self, hw: &HwParams) -> Vec<LayerCost> {
        let mut out = Vec::new();
        self.costs_into(hw, &mut out);
        out
    }

    /// [`LayerBatch::compute_sum`] with a caller-provided scratch
    /// buffer for the per-slot costs (reused across hardware points).
    pub fn compute_sum_with(&self, hw: &HwParams, scratch: &mut Vec<LayerCost>) -> BatchSum {
        self.costs_into(hw, scratch);
        let mut cycles: u64 = 0;
        let mut energy_pj = 0.0;
        for &slot in &self.seq {
            let c = scratch[slot as usize];
            cycles += c.cycles;
            energy_pj += c.energy_pj;
        }
        BatchSum { cycles, energy_pj }
    }

    /// Whole-batch compute totals under `hw`: each distinct shape is
    /// priced once, then the totals replay the original execution
    /// order — bit-identical to the per-layer reference summation.
    pub fn compute_sum(&self, hw: &HwParams) -> BatchSum {
        let mut scratch = Vec::new();
        self.compute_sum_with(hw, &mut scratch)
    }

    /// Evaluates every distinct shape's **cycles** under `hw` into
    /// `out` (slot-ordered; cleared first) — [`LayerBatch::costs_into`]
    /// with all floating-point energy work stripped. Systolic slots
    /// run pure integer tile/wave arithmetic.
    fn cycles_into(&self, hw: &HwParams, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.slot_count());
        let sa = SystolicArrayModel::new(*hw);
        out.extend(self.conv2d.iter().map(|c| sa.conv2d_cycles(c)));
        out.extend(self.conv1d.iter().map(|c| sa.conv1d_cycles(c)));
        out.extend(self.linear.iter().map(|l| sa.linear_cycles(l)));
        out.extend(self.act.iter().map(|a| activation_cycles(a, hw)));
        out.extend(self.pool.iter().map(|p| pooling_cycles(p, hw)));
        out.extend(self.flatten.iter().map(|f| reshape_cycles(f.elements)));
        out.extend(self.permute.iter().map(|p| reshape_cycles(p.elements)));
    }

    /// Whole-batch compute **cycles** under `hw` — the cycles-only
    /// lower-bound kernel.
    ///
    /// The per-slot cycle formulas are the exact integer cores the
    /// full costing path uses, and `u64` addition is associative, so
    /// `compute_cycles_with(hw, _) == compute_sum(hw).cycles` exactly.
    /// Dividing by the clock gives a **latency lower bound**: total
    /// latency is these compute seconds plus nonnegative transfer
    /// terms. Materially cheaper than [`LayerBatch::compute_sum`] —
    /// systolic cycles are tile/wave integer math with none of the
    /// energy `f64` work.
    pub fn compute_cycles_with(&self, hw: &HwParams, scratch: &mut Vec<u64>) -> u64 {
        self.cycles_into(hw, scratch);
        self.seq
            .iter()
            .map(|&slot| scratch[slot as usize])
            .sum::<u64>()
    }

    /// [`LayerBatch::compute_cycles_with`] with a fresh scratch buffer.
    pub fn compute_cycles(&self, hw: &HwParams) -> u64 {
        let mut scratch = Vec::new();
        self.compute_cycles_with(hw, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::layer_cost;
    use claire_model::ActivationKind;

    fn kinds() -> Vec<LayerKind> {
        let conv = LayerKind::Conv2d(Conv2d {
            in_channels: 16,
            out_channels: 32,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            ifm: (28, 28),
            groups: 1,
        });
        let relu = LayerKind::Activation(Activation {
            kind: ActivationKind::Relu,
            elements: 32 * 28 * 28,
        });
        let fc = LayerKind::Linear(Linear {
            in_features: 256,
            out_features: 64,
            tokens: 4,
        });
        let flat = LayerKind::Flatten(Flatten { elements: 4096 });
        // Heavy repetition, interleaved, like a real block stack.
        vec![conv, relu, conv, relu, conv, relu, flat, fc, relu, fc, fc]
    }

    #[test]
    fn dedup_preserves_sequence_length() {
        let k = kinds();
        let b = LayerBatch::from_kinds(k.iter());
        assert_eq!(b.layer_count(), k.len());
        assert_eq!(b.slot_count(), 4, "conv, relu, fc, flatten");
        assert!(!b.is_empty());
    }

    #[test]
    fn batched_sum_is_bit_identical_to_per_layer_walk() {
        let k = kinds();
        let b = LayerBatch::from_kinds(k.iter());
        for hw in [
            HwParams::new(16, 16, 8, 8),
            HwParams::new(32, 32, 16, 16),
            HwParams::new(64, 8, 32, 4),
        ] {
            let mut cycles: u64 = 0;
            let mut energy_pj = 0.0;
            for kind in &k {
                let c = layer_cost(kind, &hw);
                cycles += c.cycles;
                energy_pj += c.energy_pj;
            }
            let got = b.compute_sum(&hw);
            assert_eq!(got.cycles, cycles, "{hw}");
            assert_eq!(got.energy_pj.to_bits(), energy_pj.to_bits(), "{hw}");
        }
    }

    #[test]
    fn slot_costs_match_layer_cost() {
        let k = kinds();
        let b = LayerBatch::from_kinds(k.iter());
        let hw = HwParams::new(32, 32, 16, 16);
        let costs = b.costs(&hw);
        assert_eq!(costs.len(), b.slot_count());
        // Every distinct kind's slot cost equals the reference kernel.
        for kind in &k {
            let reference = layer_cost(kind, &hw);
            assert!(costs.contains(&reference), "no slot matches {kind:?}");
        }
    }

    #[test]
    fn empty_batch_sums_to_zero() {
        let b = LayerBatch::from_kinds(std::iter::empty());
        assert!(b.is_empty());
        let s = b.compute_sum(&HwParams::new(8, 8, 8, 8));
        assert_eq!(s.cycles, 0);
        assert_eq!(s.energy_pj, 0.0);
    }

    #[test]
    fn cycles_kernel_is_bit_identical_to_full_costing() {
        let k = kinds();
        let b = LayerBatch::from_kinds(k.iter());
        let mut scratch = Vec::new();
        for hw in [
            HwParams::new(16, 16, 8, 8),
            HwParams::new(32, 32, 16, 16),
            HwParams::new(64, 8, 32, 4),
            HwParams::new(1, 1, 1, 1),
        ] {
            assert_eq!(
                b.compute_cycles_with(&hw, &mut scratch),
                b.compute_sum(&hw).cycles,
                "{hw}"
            );
            assert_eq!(b.compute_cycles(&hw), b.compute_sum(&hw).cycles, "{hw}");
        }
    }

    #[test]
    fn cycles_kernel_matches_per_layer_reference() {
        let k = kinds();
        let b = LayerBatch::from_kinds(k.iter());
        let hw = HwParams::new(32, 32, 16, 16);
        let reference: u64 = k.iter().map(|kind| layer_cost(kind, &hw).cycles).sum();
        assert_eq!(b.compute_cycles(&hw), reference);
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let k = kinds();
        let b = LayerBatch::from_kinds(k.iter());
        let mut scratch = Vec::new();
        let a = b.compute_sum_with(&HwParams::new(16, 16, 8, 8), &mut scratch);
        let c = b.compute_sum_with(&HwParams::new(16, 16, 8, 8), &mut scratch);
        assert_eq!(a, c);
    }
}
