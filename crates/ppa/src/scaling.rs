//! First-order technology-node scaling.
//!
//! The paper fixes TSMC 28 nm. These factors project its PPA results
//! to 16 nm and 7 nm-class nodes (logic-density, dynamic-energy and
//! frequency scaling taken from published foundry/ISSCC survey
//! figures) so the node-sensitivity bench can ask whether the
//! chiplet-library conclusions survive process migration — they do,
//! and the *absolute* NRE stakes grow steeply (see
//! `claire-cost::NreModel::{tsmc16, tsmc7}`).
//!
//! First-order means one scalar per axis: wires, SRAM and analog
//! scale worse than logic in reality, so treat projections as bands,
//! not point values.

use serde::{Deserialize, Serialize};

/// Process node identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// TSMC 28 nm-class (the paper's node; scaling identity).
    N28,
    /// 16 nm-class FinFET.
    N16,
    /// 7 nm-class FinFET.
    N7,
}

/// Scaling factors relative to the 28-nm calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeScaling {
    /// The node.
    pub node: TechNode,
    /// Logic-area multiplier (< 1 shrinks).
    pub area_scale: f64,
    /// Dynamic-energy multiplier (< 1 saves).
    pub energy_scale: f64,
    /// Achievable-frequency multiplier (> 1 speeds up).
    pub frequency_scale: f64,
}

impl NodeScaling {
    /// Identity scaling: the paper's 28-nm baseline.
    pub fn n28() -> Self {
        NodeScaling {
            node: TechNode::N28,
            area_scale: 1.0,
            energy_scale: 1.0,
            frequency_scale: 1.0,
        }
    }

    /// 16 nm-class: ≈ 0.50× area, 0.60× energy, 1.3× frequency.
    pub fn n16() -> Self {
        NodeScaling {
            node: TechNode::N16,
            area_scale: 0.50,
            energy_scale: 0.60,
            frequency_scale: 1.3,
        }
    }

    /// 7 nm-class: ≈ 0.20× area, 0.35× energy, 1.8× frequency.
    pub fn n7() -> Self {
        NodeScaling {
            node: TechNode::N7,
            area_scale: 0.20,
            energy_scale: 0.35,
            frequency_scale: 1.8,
        }
    }

    /// All nodes, coarsest first.
    pub fn all() -> [NodeScaling; 3] {
        [Self::n28(), Self::n16(), Self::n7()]
    }

    /// Projects an area from the 28-nm calibration.
    pub fn scale_area_mm2(&self, area_mm2: f64) -> f64 {
        area_mm2 * self.area_scale
    }

    /// Projects an energy from the 28-nm calibration.
    pub fn scale_energy_j(&self, energy_j: f64) -> f64 {
        energy_j * self.energy_scale
    }

    /// Projects a latency from the 28-nm calibration (same cycle
    /// count at a faster clock).
    pub fn scale_latency_s(&self, latency_s: f64) -> f64 {
        latency_s / self.frequency_scale
    }
}

impl Default for NodeScaling {
    fn default() -> Self {
        Self::n28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n28_is_identity() {
        let s = NodeScaling::n28();
        assert_eq!(s.scale_area_mm2(37.5), 37.5);
        assert_eq!(s.scale_energy_j(1e-3), 1e-3);
        assert_eq!(s.scale_latency_s(2e-3), 2e-3);
    }

    #[test]
    fn advanced_nodes_shrink_and_speed_up() {
        for s in [NodeScaling::n16(), NodeScaling::n7()] {
            assert!(s.scale_area_mm2(100.0) < 100.0, "{:?}", s.node);
            assert!(s.scale_energy_j(1.0) < 1.0, "{:?}", s.node);
            assert!(s.scale_latency_s(1.0) < 1.0, "{:?}", s.node);
        }
        // 7 nm dominates 16 nm on every axis.
        let (a, b) = (NodeScaling::n16(), NodeScaling::n7());
        assert!(b.area_scale < a.area_scale);
        assert!(b.energy_scale < a.energy_scale);
        assert!(b.frequency_scale > a.frequency_scale);
    }

    #[test]
    fn power_density_rises_with_scaling() {
        // The dark-silicon fact: energy shrinks slower than area, so
        // power density climbs at each node — the thermal constraint
        // tightens exactly as the paper's PD_limit anticipates.
        for s in [NodeScaling::n16(), NodeScaling::n7()] {
            let pd_scale = (s.energy_scale / s.scale_latency_s(1.0)) / s.area_scale;
            assert!(pd_scale > 1.0, "{:?}: {pd_scale}", s.node);
        }
    }
}
