//! Generative design spaces: lazy [`HwParams`] producers that never
//! allocate the cross-product.
//!
//! The explicit [`DseSpace`] stores one `Vec` per axis and stays the
//! right tool at paper scale (81 points) and dense-stress scale (10⁴).
//! At 10⁶+ points even the *axis values* are better described than
//! stored — [`GridSpace`] holds four arithmetic progressions (12
//! words) and decodes any flat index on demand. The [`DesignSpace`]
//! trait abstracts both behind index-addressed enumeration so the
//! search can screen, sample and re-visit points by index without
//! ever materializing `size()` `HwParams` values at once.
//!
//! **Index order is iteration order.** `point_at` decodes a flat
//! index mixed-radix over the axes with `sa_size` slowest and
//! `n_pool` fastest — exactly the nested-loop order of
//! [`DseSpace::iter`] — so `space_points(&s)` yields the same point
//! sequence as the explicit iterator, and every downstream
//! deterministic tie-break ("first point in space order") means the
//! same thing for explicit and generative spaces.

use crate::params::{DseSpace, HwParams};
use serde::{Deserialize, Serialize};

/// A lazily enumerable hardware design space.
///
/// Implementations expose a raw index range `0..size()`; each slot
/// decodes to a design point or to `None` when the slot's parameter
/// combination is invalid (zero-valued — the same combinations
/// [`DseSpace::iter`] skips). Object-safe so sweep code can take
/// `&dyn DesignSpace`.
pub trait DesignSpace {
    /// Number of raw index slots (the axis cross-product size,
    /// counting slots whose decoded point is invalid).
    fn size(&self) -> usize;

    /// The design point at flat `index`, or `None` when the slot is
    /// out of range or decodes to a zero-valued parameter.
    fn point_at(&self, index: usize) -> Option<HwParams>;
}

/// Iterates the valid points of `space` in index order, yielding
/// `(flat index, point)` pairs. For a [`DseSpace`] the point sequence
/// is exactly [`DseSpace::iter`]'s.
pub fn space_points(
    space: &(impl DesignSpace + ?Sized),
) -> impl Iterator<Item = (u32, HwParams)> + '_ {
    (0..space.size()).filter_map(move |i| space.point_at(i).map(|hw| (i as u32, hw)))
}

impl DesignSpace for DseSpace {
    fn size(&self) -> usize {
        self.len()
    }

    fn point_at(&self, index: usize) -> Option<HwParams> {
        let np = self.n_pools.len().max(1);
        let na = self.n_acts.len().max(1);
        let nn = self.n_sas.len().max(1);
        let pi = index % np;
        let rest = index / np;
        let ai = rest % na;
        let rest = rest / na;
        let ni = rest % nn;
        let si = rest / nn;
        let s = *self.sa_sizes.get(si)?;
        let n = *self.n_sas.get(ni)?;
        let a = *self.n_acts.get(ai)?;
        let p = *self.n_pools.get(pi)?;
        HwParams::try_new(s, n, a, p).ok()
    }
}

/// One axis of a [`GridSpace`]: the arithmetic progression
/// `start, start+step, …` of `count` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridAxis {
    /// First value of the progression.
    pub start: u32,
    /// Increment between consecutive values.
    pub step: u32,
    /// Number of values on the axis.
    pub count: u32,
}

impl GridAxis {
    /// Builds the axis `start, start+step, …` (`count` values).
    pub fn new(start: u32, step: u32, count: u32) -> Self {
        GridAxis { start, step, count }
    }

    /// The `i`-th value (saturating, so decoding stays panic-free
    /// under `-C overflow-checks=on` even for absurd descriptors).
    pub fn value(&self, i: u32) -> u32 {
        self.start.saturating_add(self.step.saturating_mul(i))
    }

    /// Number of values on the axis.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when the axis holds no values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A generative grid over the four hardware axes: O(1) storage for an
/// arbitrarily large cross-product, decoded point by point through
/// [`DesignSpace::point_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSpace {
    /// Systolic-array dimension axis.
    pub sa_size: GridAxis,
    /// Array-count axis.
    pub n_sa: GridAxis,
    /// Activation-unit-count axis.
    pub n_act: GridAxis,
    /// Pooling-unit-count axis.
    pub n_pool: GridAxis,
}

impl GridSpace {
    /// The 10⁶-point stress grid: 32 values per axis, 32⁴ = 1 048 576
    /// raw slots, spanning tiny (8×8 array) through far-over-budget
    /// (132×132 arrays × 128) corners so the area and lower-bound
    /// screens both have real work to do.
    pub fn huge() -> Self {
        GridSpace {
            sa_size: GridAxis::new(8, 4, 32),
            n_sa: GridAxis::new(4, 4, 32),
            n_act: GridAxis::new(2, 2, 32),
            n_pool: GridAxis::new(2, 2, 32),
        }
    }
}

impl DesignSpace for GridSpace {
    fn size(&self) -> usize {
        self.sa_size.len() * self.n_sa.len() * self.n_act.len() * self.n_pool.len()
    }

    fn point_at(&self, index: usize) -> Option<HwParams> {
        if index >= self.size() {
            return None;
        }
        let np = self.n_pool.len().max(1);
        let na = self.n_act.len().max(1);
        let nn = self.n_sa.len().max(1);
        let pi = index % np;
        let rest = index / np;
        let ai = rest % na;
        let rest = rest / na;
        let ni = rest % nn;
        let si = rest / nn;
        HwParams::try_new(
            self.sa_size.value(si as u32),
            self.n_sa.value(ni as u32),
            self.n_act.value(ai as u32),
            self.n_pool.value(pi as u32),
        )
        .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dse_space_point_at_matches_iter_order() {
        for space in [DseSpace::default(), DseSpace::dense(6)] {
            let explicit: Vec<HwParams> = space.iter().collect();
            let decoded: Vec<HwParams> = space_points(&space).map(|(_, hw)| hw).collect();
            assert_eq!(explicit, decoded);
            assert_eq!(space.size(), space.len());
        }
    }

    #[test]
    fn zero_valued_slots_are_skipped_not_panicked() {
        let space = DseSpace {
            sa_sizes: vec![16, 0, 32],
            ..DseSpace::default()
        };
        let explicit: Vec<HwParams> = space.iter().collect();
        let decoded: Vec<HwParams> = space_points(&space).map(|(_, hw)| hw).collect();
        assert_eq!(explicit, decoded);
        assert!(decoded.len() < space.size());
    }

    #[test]
    fn out_of_range_index_is_none() {
        let space = DseSpace::default();
        assert!(space.point_at(space.size()).is_none());
        assert!(space.point_at(usize::MAX).is_none());
    }

    #[test]
    fn grid_space_decodes_every_slot_in_order() {
        let g = GridSpace {
            sa_size: GridAxis::new(16, 16, 3),
            n_sa: GridAxis::new(8, 8, 2),
            n_act: GridAxis::new(4, 4, 2),
            n_pool: GridAxis::new(4, 4, 2),
        };
        assert_eq!(g.size(), 3 * 2 * 2 * 2);
        let pts: Vec<HwParams> = space_points(&g).map(|(_, hw)| hw).collect();
        assert_eq!(pts.len(), g.size(), "no zero-valued slots in this grid");
        // Equivalent explicit space must enumerate identically.
        let explicit = DseSpace {
            sa_sizes: vec![16, 32, 48],
            n_sas: vec![8, 16],
            n_acts: vec![4, 8],
            n_pools: vec![4, 8],
            threads: None,
        };
        let reference: Vec<HwParams> = explicit.iter().collect();
        assert_eq!(pts, reference);
    }

    #[test]
    fn huge_grid_has_a_million_slots_without_allocating_them() {
        let g = GridSpace::huge();
        assert_eq!(g.size(), 1 << 20);
        assert!(g.point_at(0).is_some());
        assert!(g.point_at(g.size() - 1).is_some());
        assert!(g.point_at(g.size()).is_none());
        // Spot-check index round-tripping against the mixed-radix
        // layout: slot 0 is every axis at start.
        assert_eq!(g.point_at(0), HwParams::try_new(8, 4, 2, 2).ok());
    }

    #[test]
    fn trait_is_object_safe() {
        let spaces: Vec<Box<dyn DesignSpace>> =
            vec![Box::new(DseSpace::default()), Box::new(GridSpace::huge())];
        for s in &spaces {
            assert!(s.size() > 0);
            assert!(space_points(s.as_ref()).count() > 0);
        }
    }
}
