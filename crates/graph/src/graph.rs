//! The `G(N, E, w_N, w_E)` structure of the paper's Step #TR1.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Display;

/// A directed weighted graph with node weights.
///
/// * node weight `w_N` — "the number of times the node needs to be
///   executed to compute the entire layer" (accumulated per node)
/// * edge weight `w_E` — "the volume of data communication between
///   layers" (accumulated per ordered pair)
///
/// Node keys are any ordered type; the CLAIRE core uses hardware-unit
/// identifiers. All iteration is in key order, so every downstream
/// algorithm is deterministic.
///
/// Serialisation uses node/edge *lists* (JSON maps require string
/// keys, and node keys are typically enums), via hand-written impls
/// that mirror [`GraphRepr`].
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph<N: Ord + Clone> {
    nodes: BTreeMap<N, f64>,
    edges: BTreeMap<(N, N), f64>,
}

/// List-based deserialisation mirror of [`WeightedGraph`].
#[derive(Deserialize)]
struct GraphRepr<N: Deserialize> {
    nodes: Vec<(N, f64)>,
    edges: Vec<(N, N, f64)>,
}

impl<N: Ord + Clone + Deserialize> From<GraphRepr<N>> for WeightedGraph<N> {
    fn from(r: GraphRepr<N>) -> Self {
        WeightedGraph {
            nodes: r.nodes.into_iter().collect(),
            edges: r.edges.into_iter().map(|(a, b, w)| ((a, b), w)).collect(),
        }
    }
}

impl<N: Ord + Clone + Serialize + Deserialize> Serialize for WeightedGraph<N> {
    // Serialised by reference (no whole-graph clone), emitting exactly
    // the shape the derived `GraphRepr` impl produced: an object of
    // `[key, weight]` / `[from, to, weight]` list entries.
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let nodes = self
            .nodes
            .iter()
            .map(|(n, w)| Value::Array(vec![n.to_value(), w.to_value()]))
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|((a, b), w)| Value::Array(vec![a.to_value(), b.to_value(), w.to_value()]))
            .collect();
        Value::Object(vec![
            ("nodes".to_owned(), Value::Array(nodes)),
            ("edges".to_owned(), Value::Array(edges)),
        ])
    }
}

impl<N: Ord + Clone + Serialize + Deserialize> Deserialize for WeightedGraph<N> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        GraphRepr::from_value(v).map(WeightedGraph::from)
    }
}

impl<N: Ord + Clone> Default for WeightedGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Ord + Clone> WeightedGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        WeightedGraph {
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
        }
    }

    /// Adds `weight` to node `n`'s weight, inserting it if absent.
    pub fn add_node(&mut self, n: N, weight: f64) {
        *self.nodes.entry(n).or_insert(0.0) += weight;
    }

    /// Adds `weight` to the directed edge `from -> to`, inserting both
    /// endpoints (with zero node weight) if absent.
    pub fn add_edge(&mut self, from: N, to: N, weight: f64) {
        self.nodes.entry(from.clone()).or_insert(0.0);
        self.nodes.entry(to.clone()).or_insert(0.0);
        *self.edges.entry((from, to)).or_insert(0.0) += weight;
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Directed edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The weight of node `n`, if present.
    pub fn node_weight(&self, n: &N) -> Option<f64> {
        self.nodes.get(n).copied()
    }

    /// The weight of the directed edge `from -> to`, if present.
    pub fn edge_weight(&self, from: &N, to: &N) -> Option<f64> {
        self.edges.get(&(from.clone(), to.clone())).copied()
    }

    /// Iterates nodes with weights in key order.
    pub fn nodes(&self) -> impl Iterator<Item = (&N, f64)> {
        self.nodes.iter().map(|(n, &w)| (n, w))
    }

    /// Iterates directed edges with weights in key order.
    pub fn edges(&self) -> impl Iterator<Item = (&N, &N, f64)> {
        self.edges.iter().map(|((a, b), &w)| (a, b, w))
    }

    /// Total directed edge weight.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.values().sum()
    }

    /// Weighted degree of `n` in the undirected view (self-loops
    /// count twice, the modularity convention).
    pub fn degree(&self, n: &N) -> f64 {
        let mut d = 0.0;
        for ((a, b), &w) in &self.edges {
            if a == n && b == n {
                d += 2.0 * w;
            } else if a == n || b == n {
                d += w;
            }
        }
        d
    }

    /// Undirected edge density: present pairs / possible pairs
    /// (self-loops excluded; 0.0 for graphs with < 2 nodes).
    pub fn density(&self) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 0.0;
        }
        let pairs = self
            .undirected_edges()
            .keys()
            .filter(|(a, b)| a != b)
            .count();
        pairs as f64 / (n * (n - 1) / 2) as f64
    }

    /// The node-weight vector as a map — the input to the weighted
    /// Jaccard similarity.
    pub fn node_weights(&self) -> &BTreeMap<N, f64> {
        &self.nodes
    }

    /// Merges `other` into `self`, summing node and edge weights — the
    /// universal-graph construction `UG(N, E, w_N, w_E)` that
    /// "consolidates information from all the algorithms used in the
    /// training phase".
    pub fn merge(&mut self, other: &WeightedGraph<N>) {
        for (n, w) in other.nodes() {
            self.add_node(n.clone(), w);
        }
        for (a, b, w) in other.edges() {
            self.add_edge(a.clone(), b.clone(), w);
        }
    }

    /// The undirected edge view used by modularity clustering: weights
    /// of `a -> b` and `b -> a` are combined under `(min, max)` key
    /// order; self-loops are preserved.
    pub fn undirected_edges(&self) -> BTreeMap<(N, N), f64> {
        let mut out: BTreeMap<(N, N), f64> = BTreeMap::new();
        for ((a, b), &w) in &self.edges {
            let key = if a <= b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            *out.entry(key).or_insert(0.0) += w;
        }
        out
    }

    /// Builds a graph from node and edge lists.
    pub fn from_parts<NI, EI>(nodes: NI, edges: EI) -> Self
    where
        NI: IntoIterator<Item = (N, f64)>,
        EI: IntoIterator<Item = (N, N, f64)>,
    {
        let mut g = WeightedGraph::new();
        for (n, w) in nodes {
            g.add_node(n, w);
        }
        for (a, b, w) in edges {
            g.add_edge(a, b, w);
        }
        g
    }
}

impl<N: Ord + Clone + Display> WeightedGraph<N> {
    /// Renders the graph in Graphviz DOT format, one node per line with
    /// its `w_N` and one edge per line with its `w_E` — the format used
    /// to regenerate the paper's Fig. 3.
    ///
    /// `community_of` (optional) colours nodes by community index.
    pub fn to_dot(&self, name: &str, community_of: Option<&dyn Fn(&N) -> usize>) -> String {
        const PALETTE: [&str; 8] = [
            "lightblue",
            "lightsalmon",
            "palegreen",
            "plum",
            "khaki",
            "lightpink",
            "lightgray",
            "aquamarine",
        ];
        let mut s = format!("graph \"{name}\" {{\n  node [shape=box, style=filled];\n");
        for (n, w) in self.nodes() {
            let color = community_of
                .map(|f| PALETTE[f(n) % PALETTE.len()])
                .unwrap_or("white");
            s.push_str(&format!(
                "  \"{n}\" [label=\"{n}\\nw_N={w:.0}\", fillcolor={color}];\n"
            ));
        }
        for ((a, b), w) in self.undirected_edges() {
            s.push_str(&format!("  \"{a}\" -- \"{b}\" [label=\"{w:.0}\"];\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_accumulates() {
        let mut g = WeightedGraph::new();
        g.add_node("a", 1.0);
        g.add_node("a", 2.5);
        assert_eq!(g.node_weight(&"a"), Some(3.5));
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn add_edge_inserts_endpoints() {
        let mut g = WeightedGraph::new();
        g.add_edge("a", "b", 4.0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_weight(&"a", &"b"), Some(4.0));
        assert_eq!(g.edge_weight(&"b", &"a"), None);
    }

    #[test]
    fn merge_sums_weights() {
        let mut g1 = WeightedGraph::new();
        g1.add_node("a", 1.0);
        g1.add_edge("a", "b", 2.0);
        let mut g2 = WeightedGraph::new();
        g2.add_node("a", 3.0);
        g2.add_edge("a", "b", 5.0);
        g2.add_edge("b", "c", 1.0);
        g1.merge(&g2);
        assert_eq!(g1.node_weight(&"a"), Some(4.0));
        assert_eq!(g1.edge_weight(&"a", &"b"), Some(7.0));
        assert_eq!(g1.node_count(), 3);
    }

    #[test]
    fn merge_is_commutative_on_weights() {
        let mut g1 = WeightedGraph::new();
        g1.add_edge(1, 2, 3.0);
        g1.add_node(1, 5.0);
        let mut g2 = WeightedGraph::new();
        g2.add_edge(2, 1, 1.0);
        g2.add_node(3, 2.0);

        let mut a = g1.clone();
        a.merge(&g2);
        let mut b = g2.clone();
        b.merge(&g1);
        assert_eq!(a, b);
    }

    #[test]
    fn undirected_view_combines_reciprocal_edges() {
        let mut g = WeightedGraph::new();
        g.add_edge("a", "b", 2.0);
        g.add_edge("b", "a", 3.0);
        g.add_edge("c", "c", 7.0);
        let u = g.undirected_edges();
        assert_eq!(u[&("a", "b")], 5.0);
        assert_eq!(u[&("c", "c")], 7.0);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut g = WeightedGraph::new();
        g.add_node("CONV2D", 12.0);
        g.add_edge("CONV2D", "RELU", 800.0);
        let dot = g.to_dot("c1", None);
        assert!(dot.contains("\"CONV2D\" [label=\"CONV2D\\nw_N=12\""));
        assert!(dot.contains("\"CONV2D\" -- \"RELU\""));
        assert!(dot.starts_with("graph \"c1\""));
    }

    #[test]
    fn dot_coloring_uses_communities() {
        let mut g = WeightedGraph::new();
        g.add_edge("a", "b", 1.0);
        let f = |n: &&str| usize::from(*n == "b");
        let dot = g.to_dot("g", Some(&f));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("fillcolor=lightsalmon"));
    }

    #[test]
    fn degree_counts_self_loops_twice() {
        let mut g = WeightedGraph::new();
        g.add_edge("a", "a", 3.0);
        g.add_edge("a", "b", 2.0);
        g.add_edge("c", "a", 1.0);
        assert_eq!(g.degree(&"a"), 2.0 * 3.0 + 2.0 + 1.0);
        assert_eq!(g.degree(&"b"), 2.0);
        assert_eq!(g.degree(&"z"), 0.0);
    }

    #[test]
    fn density_of_triangle_is_one() {
        let mut g = WeightedGraph::new();
        g.add_edge(0_u32, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        assert_eq!(g.density(), 1.0);
        g.add_node(3, 1.0);
        assert!((g.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serializes_as_node_and_edge_lists() {
        // Wire format pinned to the old derived-`GraphRepr` shape so
        // fixtures written before the by-reference impl still parse.
        let mut g = WeightedGraph::new();
        g.add_node("a".to_owned(), 2.0);
        g.add_edge("a".to_owned(), "b".to_owned(), 9.0);
        assert_eq!(
            serde_json::to_string(&g).unwrap(),
            r#"{"nodes":[["a",2.0],["b",0.0]],"edges":[["a","b",9.0]]}"#
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut g = WeightedGraph::new();
        g.add_node("a".to_owned(), 2.0);
        g.add_edge("a".to_owned(), "b".to_owned(), 9.0);
        let json = serde_json::to_string(&g).unwrap();
        let back: WeightedGraph<String> = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
