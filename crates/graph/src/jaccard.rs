//! Weighted Jaccard similarity over node-weight vectors.
//!
//! The paper uses it twice: Algorithm 1 line 14 ("Separate the
//! algorithms into different subsets based on weighted Jaccard
//! Similarity") and Step #TT1 (test algorithms are assigned to the
//! library configuration with the highest similarity).

use std::collections::BTreeMap;

/// Weighted Jaccard similarity between two non-negative weight vectors:
///
/// `J_w(x, y) = Σ_u min(x_u, y_u) / Σ_u max(x_u, y_u)`
///
/// where `u` ranges over the union of keys. Quantifies "the similarity
/// between two algorithms by comparing the ratio of the intersection of
/// their nodes to the union of their nodes", weighted by how much work
/// each node performs.
///
/// Returns a value in `[0, 1]`; two empty (or all-zero) vectors are
/// defined as similarity `1.0`.
///
/// # Panics
///
/// Panics if any weight is negative or NaN — weights are execution
/// counts / work volumes and must be non-negative.
///
/// # Example
///
/// ```
/// use claire_graph::weighted_jaccard;
/// use std::collections::BTreeMap;
///
/// let a: BTreeMap<_, _> = [("CONV2D", 8.0), ("RELU", 2.0)].into();
/// let b: BTreeMap<_, _> = [("CONV2D", 4.0), ("RELU", 2.0)].into();
/// let j = weighted_jaccard(&a, &b);
/// assert!((j - 0.6).abs() < 1e-12); // (4+2)/(8+2)
/// ```
pub fn weighted_jaccard<K: Ord>(a: &BTreeMap<K, f64>, b: &BTreeMap<K, f64>) -> f64 {
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;

    let mut ia = a.iter().peekable();
    let mut ib = b.iter().peekable();

    fn check(w: f64) -> f64 {
        assert!(w >= 0.0, "weighted_jaccard requires non-negative weights");
        w
    }

    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&(ka, &wa)), Some(&(kb, &wb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    max_sum += check(wa);
                    ia.next();
                }
                std::cmp::Ordering::Greater => {
                    max_sum += check(wb);
                    ib.next();
                }
                std::cmp::Ordering::Equal => {
                    min_sum += check(wa).min(check(wb));
                    max_sum += wa.max(wb);
                    ia.next();
                    ib.next();
                }
            },
            (Some(&(_, &wa)), None) => {
                max_sum += check(wa);
                ia.next();
            }
            (None, Some(&(_, &wb))) => {
                max_sum += check(wb);
                ib.next();
            }
            (None, None) => break,
        }
    }

    if max_sum == 0.0 {
        1.0
    } else {
        min_sum / max_sum
    }
}

/// The full pairwise [`weighted_jaccard`] matrix of `vectors`,
/// computed once over *interned* dense vectors: the union keyset is
/// collected a single time, every map is flattened to a dense `f64`
/// vector over it, and each pair is scored with two flat-array sweeps
/// instead of a `BTreeMap` merge-walk — the kernel behind Algorithm 1's
/// subset partitioning when the training set grows.
///
/// Entry `[i][j]` is **bit-identical** to `weighted_jaccard(&vectors[i],
/// &vectors[j])`: the dense sweep visits keys in the same sorted order
/// and only inserts `+ 0.0` terms for keys a vector lacks, which leaves
/// every non-negative partial sum unchanged. The matrix is symmetric
/// with a unit diagonal (two all-zero vectors score `1.0`, matching the
/// pairwise convention).
///
/// # Panics
///
/// Panics if any weight is negative or NaN.
pub fn weighted_jaccard_matrix<K: Ord>(vectors: &[BTreeMap<K, f64>]) -> Vec<Vec<f64>> {
    let keys: std::collections::BTreeSet<&K> = vectors.iter().flat_map(|v| v.keys()).collect();
    let dense: Vec<Vec<f64>> = vectors
        .iter()
        .map(|v| {
            keys.iter()
                .map(|k| {
                    let w = v.get(k).copied().unwrap_or(0.0);
                    assert!(w >= 0.0, "weighted_jaccard requires non-negative weights");
                    w
                })
                .collect()
        })
        .collect();

    let n = vectors.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        matrix[i][i] = 1.0;
        for j in (i + 1)..n {
            let (mut min_sum, mut max_sum) = (0.0, 0.0);
            for (&x, &y) in dense[i].iter().zip(&dense[j]) {
                min_sum += x.min(y);
                max_sum += x.max(y);
            }
            let s = if max_sum == 0.0 {
                1.0
            } else {
                min_sum / max_sum
            };
            matrix[i][j] = s;
            matrix[j][i] = s;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(&'static str, f64)]) -> BTreeMap<&'static str, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn identical_vectors_have_similarity_one() {
        let a = v(&[("x", 3.0), ("y", 7.0)]);
        assert_eq!(weighted_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_vectors_have_similarity_zero() {
        let a = v(&[("x", 3.0)]);
        let b = v(&[("y", 5.0)]);
        assert_eq!(weighted_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = v(&[("x", 3.0), ("y", 1.0)]);
        let b = v(&[("x", 1.0), ("z", 4.0)]);
        assert_eq!(weighted_jaccard(&a, &b), weighted_jaccard(&b, &a));
    }

    #[test]
    fn known_value() {
        // min: x 1, y 0, z 0 = 1; max: x 3 + y 1 + z 4 = 8.
        let a = v(&[("x", 3.0), ("y", 1.0)]);
        let b = v(&[("x", 1.0), ("z", 4.0)]);
        assert!((weighted_jaccard(&a, &b) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vectors_are_fully_similar() {
        let a: BTreeMap<&str, f64> = BTreeMap::new();
        assert_eq!(weighted_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn scale_sensitivity_groups_similar_sized_models() {
        // A small model is more similar to another small model with the
        // same node set than to a huge one — the property that keeps
        // Swin-T with the CNNs rather than with the large transformers.
        let small1 = v(&[("LINEAR", 4.0), ("GELU", 1.0)]);
        let small2 = v(&[("LINEAR", 5.0), ("GELU", 1.0)]);
        let huge = v(&[("LINEAR", 400.0), ("GELU", 90.0)]);
        assert!(
            weighted_jaccard(&small1, &small2) > weighted_jaccard(&small1, &huge),
            "scale must matter"
        );
    }

    #[test]
    fn zero_weight_keys_do_not_contribute() {
        let a = v(&[("x", 0.0), ("y", 2.0)]);
        let b = v(&[("y", 2.0)]);
        assert_eq!(weighted_jaccard(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let a = v(&[("x", -1.0)]);
        let b = v(&[("x", 1.0)]);
        weighted_jaccard(&a, &b);
    }

    #[test]
    fn matrix_matches_pairwise_bit_exactly() {
        let vs = vec![
            v(&[("x", 3.0), ("y", 1.0)]),
            v(&[("x", 1.0), ("z", 4.0)]),
            v(&[("y", 2.5)]),
            v(&[("x", 0.125), ("y", 7.75), ("z", 1e9)]),
            BTreeMap::new(),
        ];
        let m = weighted_jaccard_matrix(&vs);
        for (i, a) in vs.iter().enumerate() {
            for (j, b) in vs.iter().enumerate() {
                assert_eq!(
                    m[i][j].to_bits(),
                    weighted_jaccard(a, b).to_bits(),
                    "({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let vs = vec![
            v(&[("x", 3.0), ("y", 1.0)]),
            v(&[("x", 1.0), ("z", 4.0)]),
            v(&[("q", 0.0)]),
        ];
        let m = weighted_jaccard_matrix(&vs);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0, "diagonal at {i}");
            for (j, s) in row.iter().enumerate() {
                assert_eq!(s.to_bits(), m[j][i].to_bits(), "({i}, {j})");
            }
        }
    }

    #[test]
    fn empty_matrix_inputs() {
        let none: Vec<BTreeMap<&str, f64>> = Vec::new();
        assert!(weighted_jaccard_matrix(&none).is_empty());
        let one = vec![v(&[("x", 2.0)])];
        assert_eq!(weighted_jaccard_matrix(&one), vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn matrix_rejects_negative_weights() {
        weighted_jaccard_matrix(&[v(&[("x", -2.0)]), v(&[("x", 1.0)])]);
    }
}
