//! Spectral bisection — an alternative chiplet-partitioning strategy
//! used by the clustering ablation bench.
//!
//! Classic Fiedler-vector partitioning: split the graph by the sign
//! structure of the second-smallest eigenvector of the weighted
//! Laplacian `L = D − A`. Computed with deterministic shifted power
//! iteration (no linear-algebra dependency), deflating the trivial
//! all-ones eigenvector.

use crate::csr::CsrGraph;
use crate::graph::WeightedGraph;
use crate::louvain::Partition;

/// Bisects `g` along its Fiedler vector.
///
/// Returns a two-community [`Partition`] (single-community for graphs
/// with fewer than two nodes or no edges; exact connected components
/// when the graph is disconnected and the Fiedler value is ~0).
///
/// Deterministic: the power iteration starts from a fixed hash-seeded
/// vector and runs a fixed `iterations` count (≥ 50 recommended).
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn spectral_bisect<N: Ord + Clone>(g: &WeightedGraph<N>, iterations: usize) -> Partition<N> {
    spectral_bisect_csr(&CsrGraph::from_weighted(g), iterations)
}

/// [`spectral_bisect`] over a prebuilt [`CsrGraph`] — the entry point
/// callers with an interned graph in hand use to skip the map rebuild.
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn spectral_bisect_csr<N: Ord + Clone>(csr: &CsrGraph<N>, iterations: usize) -> Partition<N> {
    assert!(iterations > 0, "iterations must be positive");
    let index: Vec<N> = csr.keys().to_vec();
    let n = index.len();
    if n < 2 {
        return Partition::from_communities(if n == 0 { Vec::new() } else { vec![index] });
    }

    // Dense adjacency from the CSR rows (self-loops are stored apart
    // and do not affect the Laplacian). Row order matches the old
    // sorted-map walk, so degree sums are bit-identical.
    let mut adj = vec![vec![0.0_f64; n]; n];
    let mut degree = vec![0.0_f64; n];
    for i in 0..n {
        let (row_t, row_w) = csr.row(i);
        for (&j, &w) in row_t.iter().zip(row_w) {
            adj[i][j as usize] = w;
            degree[i] += w;
        }
    }
    if csr.targets().is_empty() {
        return Partition::from_communities(vec![index]);
    }

    // Power iteration on M = c·I − L (largest eigenvector of M is the
    // smallest of L, the all-ones vector; deflate it to reach the
    // Fiedler vector).
    let c = 2.0 * degree.iter().cloned().fold(0.0, f64::max) + 1.0;
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            // Deterministic pseudo-random init (Knuth multiplicative).
            let h = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(97);
            ((h % 1000) as f64) / 1000.0 - 0.5
        })
        .collect();
    deflate_and_normalise(&mut v);

    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        for i in 0..n {
            // (c·I − L)v = c·v − D·v + A·v
            let mut acc = (c - degree[i]) * v[i];
            for j in 0..n {
                acc += adj[i][j] * v[j];
            }
            next[i] = acc;
        }
        std::mem::swap(&mut v, &mut next);
        deflate_and_normalise(&mut v);
    }

    // Split at the balance-weighted largest gap in the sorted Fiedler
    // components: a clean sign structure (clustered graph) has one
    // dominant gap; a degenerate spectrum (complete graph) falls back
    // toward a balanced cut via the weighting.
    let mut sorted = v.clone();
    // Fiedler components are finite, so total_cmp sorts identically
    // to partial_cmp while staying panic-free.
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut best_pos = n / 2;
    let mut best_score = f64::NEG_INFINITY;
    for pos in 1..n {
        let gap = sorted[pos] - sorted[pos - 1];
        let balance = pos.min(n - pos) as f64;
        let score = gap * balance;
        if score > best_score + 1e-15 {
            best_score = score;
            best_pos = pos;
        }
    }
    let threshold = (sorted[best_pos - 1] + sorted[best_pos]) / 2.0;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, node) in index.into_iter().enumerate() {
        if v[i] < threshold {
            left.push(node);
        } else {
            right.push(node);
        }
    }
    if left.is_empty() || right.is_empty() {
        // Degenerate (e.g. all components equal): one community.
        let mut all = left;
        all.extend(right);
        return Partition::from_communities(vec![all]);
    }
    Partition::from_communities(vec![left, right])
}

/// Recursive spectral clustering into (at most) `k` parts: repeatedly
/// bisect the currently largest community along its Fiedler vector.
///
/// Stops early when every community is a single node or a bisection
/// fails to split (disconnected or degenerate parts), so the result
/// may have fewer than `k` communities.
///
/// # Panics
///
/// Panics if `k` is zero or `iterations` is zero.
pub fn spectral_cluster<N: Ord + Clone>(
    g: &WeightedGraph<N>,
    k: usize,
    iterations: usize,
) -> Partition<N> {
    assert!(k > 0, "k must be positive");
    let mut communities: Vec<Vec<N>> = spectral_bisect(g, iterations).communities().to_vec();
    while communities.len() < k {
        // Split the largest splittable community.
        communities.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut split_done = false;
        for idx in 0..communities.len() {
            if communities[idx].len() < 2 {
                continue;
            }
            let members: std::collections::BTreeSet<&N> = communities[idx].iter().collect();
            let mut sub = WeightedGraph::new();
            for (n, w) in g.nodes() {
                if members.contains(n) {
                    sub.add_node(n.clone(), w);
                }
            }
            for (a, b, w) in g.edges() {
                if members.contains(a) && members.contains(b) {
                    sub.add_edge(a.clone(), b.clone(), w);
                }
            }
            let parts = spectral_bisect(&sub, iterations);
            if parts.len() == 2 {
                let mut new_parts = parts.communities().to_vec();
                communities.swap_remove(idx);
                communities.append(&mut new_parts);
                split_done = true;
                break;
            }
        }
        if !split_done {
            break;
        }
    }
    Partition::from_communities(communities)
}

/// Removes the all-ones component and normalises to unit length.
fn deflate_and_normalise(v: &mut [f64]) {
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    for x in v.iter_mut() {
        *x -= mean;
    }
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else {
        // Restart from a fixed non-uniform vector.
        for (i, x) in v.iter_mut().enumerate() {
            *x = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::louvain::modularity;

    fn two_triangles() -> WeightedGraph<u32> {
        let mut g = WeightedGraph::new();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 10.0);
        }
        g.add_edge(2, 3, 0.1);
        g
    }

    #[test]
    fn separates_two_triangles() {
        let p = spectral_bisect(&two_triangles(), 200);
        assert_eq!(p.len(), 2);
        assert_eq!(p.communities()[0], vec![0, 1, 2]);
        assert_eq!(p.communities()[1], vec![3, 4, 5]);
    }

    #[test]
    fn bisection_has_positive_modularity_on_clustered_graph() {
        let g = two_triangles();
        let p = spectral_bisect(&g, 200);
        assert!(modularity(&g, &p, 1.0) > 0.3);
    }

    #[test]
    fn deterministic() {
        let g = two_triangles();
        assert_eq!(spectral_bisect(&g, 100), spectral_bisect(&g, 100));
    }

    #[test]
    fn single_node_single_community() {
        let mut g = WeightedGraph::new();
        g.add_node(7_u32, 1.0);
        let p = spectral_bisect(&g, 10);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn empty_graph_empty_partition() {
        let g: WeightedGraph<u32> = WeightedGraph::new();
        assert!(spectral_bisect(&g, 10).is_empty());
    }

    #[test]
    fn edgeless_graph_is_one_community() {
        let mut g = WeightedGraph::new();
        g.add_node(1_u32, 1.0);
        g.add_node(2, 1.0);
        let p = spectral_bisect(&g, 10);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn complete_graph_splits_evenly() {
        let mut g = WeightedGraph::new();
        for i in 0..6_u32 {
            for j in (i + 1)..6 {
                g.add_edge(i, j, 1.0);
            }
        }
        let p = spectral_bisect(&g, 200);
        assert_eq!(p.len(), 2);
        let sizes: Vec<usize> = p.communities().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes.iter().all(|&s| s >= 2), "{sizes:?}");
    }

    #[test]
    fn kway_splits_three_triangles() {
        let mut g = WeightedGraph::new();
        for base in [0u32, 3, 6] {
            g.add_edge(base, base + 1, 10.0);
            g.add_edge(base + 1, base + 2, 10.0);
            g.add_edge(base, base + 2, 10.0);
        }
        g.add_edge(2, 3, 0.1);
        g.add_edge(5, 6, 0.1);
        let p = spectral_cluster(&g, 3, 200);
        assert_eq!(p.len(), 3);
        assert_eq!(p.communities()[0], vec![0, 1, 2]);
        assert_eq!(p.communities()[1], vec![3, 4, 5]);
        assert_eq!(p.communities()[2], vec![6, 7, 8]);
    }

    #[test]
    fn kway_k1_matches_bisection_union() {
        let g = two_triangles();
        // k = 2 is exactly one bisection.
        assert_eq!(spectral_cluster(&g, 2, 200), spectral_bisect(&g, 200));
    }

    #[test]
    fn kway_caps_at_node_count() {
        let g = two_triangles();
        let p = spectral_cluster(&g, 100, 100);
        assert!(p.len() <= 6);
        let total: usize = p.communities().iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn weighted_barbell_cuts_the_bridge() {
        let mut g = WeightedGraph::new();
        for &(a, b) in &[(0, 1), (2, 3)] {
            g.add_edge(a, b, 100.0);
        }
        g.add_edge(1_u32, 2, 1.0);
        let p = spectral_bisect(&g, 200);
        assert_eq!(p.communities()[0], vec![0, 1]);
        assert_eq!(p.communities()[1], vec![2, 3]);
    }
}
