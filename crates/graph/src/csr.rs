//! Flat, interned CSR (compressed sparse row) kernel representation
//! of a [`WeightedGraph`]'s undirected view.
//!
//! Every clustering pass of the CLAIRE synthesis phase (Louvain over a
//! universal graph, spectral bisection in the ablation path) used to
//! start by materialising a `BTreeMap<(N, N), f64>` of undirected
//! edges and a `Vec<Vec<(usize, f64)>>` adjacency — one tree and one
//! nested allocation per call, with node keys cloned throughout.
//! [`CsrGraph`] does that work **once**: node keys are interned to
//! `u32` indices (their rank in key order) and the undirected
//! adjacency is stored as three flat arrays (`offsets` / `targets` /
//! `weights`), together with the per-node self-loop weights, weighted
//! degrees and the total `2m` that modularity needs.
//!
//! Bit-compatibility contract: the builder reproduces the exact
//! neighbour ordering and floating-point summation order of the
//! previous map-based construction ([`WeightedGraph::undirected_edges`]
//! followed by index lookup), so any algorithm ported from the map
//! representation to CSR yields bit-identical results. Concretely:
//!
//! * interned index = rank of the node key in `BTreeMap` order, so
//!   index comparisons equal key comparisons;
//! * reciprocal directed edges `a -> b` / `b -> a` collapse onto the
//!   `(min, max)` pair with `w(a→b) + w(b→a)` summed in directed key
//!   order (a stable sort preserves that order inside each run);
//! * each adjacency row lists neighbours in ascending index order —
//!   exactly the push order a key-ordered map walk produces;
//! * degrees sum each row left-to-right and `2m` sums degrees in node
//!   order, matching the previous loops term for term.

use crate::graph::WeightedGraph;

/// An interned, flat CSR snapshot of a [`WeightedGraph`]'s undirected
/// view. Build once with [`CsrGraph::from_weighted`], hand to the
/// flat-array kernels ([`crate::louvain`], [`crate::spectral_bisect`]),
/// convert back with [`CsrGraph::to_weighted`] when a map view is
/// needed again.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph<N> {
    /// Interning table: node keys in ascending order; a node's interned
    /// id is its position here.
    keys: Vec<N>,
    /// Node weights (`w_N`) in key order.
    node_w: Vec<f64>,
    /// Row offsets into `targets` / `weights`; length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbour indices, ascending within each row; both directions of
    /// every undirected pair are stored (self-loops excluded).
    targets: Vec<u32>,
    /// Undirected edge weight per `targets` entry.
    weights: Vec<f64>,
    /// Raw self-loop weight per node (`A_ii / 2` in the modularity
    /// convention).
    self_loop: Vec<f64>,
    /// Weighted degree per node: `k_i = Σ_j≠i A_ij + 2·self_loop_i`.
    degree: Vec<f64>,
    /// `2m = Σ_i k_i`.
    m2: f64,
}

impl<N: Ord + Clone> CsrGraph<N> {
    /// Interns `g`'s nodes and flattens its undirected view into CSR
    /// arrays. `O(E log E)` once, against the per-call map rebuild the
    /// clustering kernels previously paid.
    pub fn from_weighted(g: &WeightedGraph<N>) -> Self {
        let keys: Vec<N> = g.nodes().map(|(n, _)| n.clone()).collect();
        let node_w: Vec<f64> = g.nodes().map(|(_, w)| w).collect();
        let n = keys.len();

        // Canonical (lo, hi, w) entries in directed key order. The
        // stable sort below groups each undirected pair while keeping
        // lo->hi before hi->lo (directed keys already order that way),
        // so run-accumulation reproduces the map's summation order.
        let mut self_loop = vec![0.0; n];
        let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(g.edge_count());
        for (a, b, w) in g.edges() {
            // Every edge endpoint is a graph node, so the searches hit;
            // an (impossible) miss drops the edge instead of panicking.
            let (Ok(i), Ok(j)) = (keys.binary_search(a), keys.binary_search(b)) else {
                continue;
            };
            let (i, j) = (i as u32, j as u32);
            if i == j {
                self_loop[i as usize] += w;
            } else {
                entries.push((i.min(j), i.max(j), w));
            }
        }
        entries.sort_by_key(|x| (x.0, x.1));
        let mut pairs: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len());
        for (lo, hi, w) in entries {
            match pairs.last_mut() {
                Some(p) if p.0 == lo && p.1 == hi => p.2 += w,
                _ => pairs.push((lo, hi, w)),
            }
        }

        let (offsets, targets, weights) = csr_from_pairs(n, &pairs);
        let (degree, m2) = degrees(&offsets, &weights, &self_loop);
        CsrGraph {
            keys,
            node_w,
            offsets,
            targets,
            weights,
            self_loop,
            degree,
            m2,
        }
    }

    /// Reconstructs a [`WeightedGraph`] carrying this CSR's undirected
    /// view: every undirected pair becomes one directed `lo -> hi`
    /// edge, self-loops stay self-loops, node weights carry over.
    /// `CsrGraph::from_weighted(&csr.to_weighted())` round-trips.
    pub fn to_weighted(&self) -> WeightedGraph<N> {
        let mut g = WeightedGraph::new();
        for (i, k) in self.keys.iter().enumerate() {
            g.add_node(k.clone(), self.node_w[i]);
        }
        for i in 0..self.node_count() {
            if self.self_loop[i] != 0.0 {
                g.add_edge(
                    self.keys[i].clone(),
                    self.keys[i].clone(),
                    self.self_loop[i],
                );
            }
            let (row_t, row_w) = self.row(i);
            for (&j, &w) in row_t.iter().zip(row_w) {
                if (j as usize) > i {
                    g.add_edge(self.keys[i].clone(), self.keys[j as usize].clone(), w);
                }
            }
        }
        g
    }

    /// Number of interned nodes.
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// True for a graph with no nodes.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interning table: node keys in ascending order; a key's
    /// interned index is its position.
    pub fn keys(&self) -> &[N] {
        &self.keys
    }

    /// The interned index of `key`, if present.
    pub fn index_of(&self, key: &N) -> Option<u32> {
        self.keys.binary_search(key).ok().map(|i| i as u32)
    }

    /// Node weights in interned order.
    pub fn node_weights(&self) -> &[f64] {
        &self.node_w
    }

    /// Row offsets (`n + 1` entries) into [`CsrGraph::targets`].
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Flat neighbour indices, ascending within each row.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Undirected edge weights, parallel to [`CsrGraph::targets`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Raw self-loop weight per node.
    pub fn self_loops(&self) -> &[f64] {
        &self.self_loop
    }

    /// Weighted degrees (`k_i`, self-loops counted twice).
    pub fn degrees(&self) -> &[f64] {
        &self.degree
    }

    /// Total weighted degree `2m`.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Node `i`'s neighbour row: `(targets, weights)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        (&self.targets[s..e], &self.weights[s..e])
    }
}

/// Builds `(offsets, targets, weights)` from unique undirected pairs
/// sorted by `(lo, hi)`. Filling both directions in pair order leaves
/// every row ascending: row `i` first receives its `j < i` neighbours
/// (from pairs `(j, i)`, ascending `j`), then its `j > i` neighbours
/// (from the `(i, j)` block, ascending `j`).
pub(crate) fn csr_from_pairs(
    n: usize,
    pairs: &[(u32, u32, f64)],
) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
    let mut offsets = vec![0u32; n + 1];
    for &(lo, hi, _) in pairs {
        offsets[lo as usize + 1] += 1;
        offsets[hi as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![0u32; 2 * pairs.len()];
    let mut weights = vec![0.0f64; 2 * pairs.len()];
    for &(lo, hi, w) in pairs {
        targets[cursor[lo as usize] as usize] = hi;
        weights[cursor[lo as usize] as usize] = w;
        cursor[lo as usize] += 1;
        targets[cursor[hi as usize] as usize] = lo;
        weights[cursor[hi as usize] as usize] = w;
        cursor[hi as usize] += 1;
    }
    (offsets, targets, weights)
}

/// Per-node weighted degrees (row sums left-to-right, self-loops
/// twice) and their total `2m`, summed in node order — the exact
/// summation order of the previous dense construction.
pub(crate) fn degrees(offsets: &[u32], weights: &[f64], self_loop: &[f64]) -> (Vec<f64>, f64) {
    let n = self_loop.len();
    let mut degree = vec![0.0; n];
    let mut m2 = 0.0;
    for i in 0..n {
        let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
        let k: f64 = weights[s..e].iter().sum::<f64>() + 2.0 * self_loop[i];
        degree[i] = k;
        m2 += k;
    }
    (degree, m2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph<&'static str> {
        let mut g = WeightedGraph::new();
        g.add_edge("b", "a", 2.0);
        g.add_edge("a", "b", 3.0);
        g.add_edge("a", "c", 1.0);
        g.add_edge("c", "c", 7.0);
        g.add_node("d", 4.0);
        g.add_node("a", 1.5);
        g
    }

    #[test]
    fn interning_follows_key_order() {
        let csr = CsrGraph::from_weighted(&sample());
        assert_eq!(csr.keys(), &["a", "b", "c", "d"]);
        assert_eq!(csr.index_of(&"c"), Some(2));
        assert_eq!(csr.index_of(&"z"), None);
        assert_eq!(csr.node_weights()[0], 1.5);
        assert_eq!(csr.node_weights()[3], 4.0);
    }

    #[test]
    fn reciprocal_edges_collapse_and_rows_ascend() {
        let csr = CsrGraph::from_weighted(&sample());
        let (t, w) = csr.row(0); // "a": neighbours b (2+3) and c (1)
        assert_eq!(t, &[1, 2]);
        assert_eq!(w, &[5.0, 1.0]);
        let (t, w) = csr.row(2); // "c": neighbour a; self-loop separate
        assert_eq!(t, &[0]);
        assert_eq!(w, &[1.0]);
        assert_eq!(csr.self_loops(), &[0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn degrees_match_map_view() {
        let g = sample();
        let csr = CsrGraph::from_weighted(&g);
        for (i, k) in csr.keys().iter().enumerate() {
            assert_eq!(csr.degrees()[i], g.degree(k), "{k}");
        }
        let total: f64 = csr.degrees().iter().sum();
        assert_eq!(csr.m2(), total);
    }

    #[test]
    fn round_trips_through_weighted() {
        let g = sample();
        let csr = CsrGraph::from_weighted(&g);
        let back = csr.to_weighted();
        assert_eq!(CsrGraph::from_weighted(&back), csr);
        // The undirected views agree edge for edge.
        assert_eq!(g.undirected_edges(), back.undirected_edges());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty: WeightedGraph<u32> = WeightedGraph::new();
        let csr = CsrGraph::from_weighted(&empty);
        assert!(csr.is_empty());
        assert_eq!(csr.m2(), 0.0);

        let mut lone = WeightedGraph::new();
        lone.add_node(9_u32, 2.0);
        let csr = CsrGraph::from_weighted(&lone);
        assert_eq!(csr.node_count(), 1);
        assert_eq!(csr.row(0), (&[] as &[u32], &[] as &[f64]));
    }
}
