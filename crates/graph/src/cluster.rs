//! Single-linkage agglomerative clustering over an arbitrary pairwise
//! similarity — the mechanism behind Algorithm 1 line 14: "Separate the
//! algorithms into different subsets (TR_k) based on weighted Jaccard
//! Similarity".

/// Groups `items` into clusters: two items end up in the same cluster
/// when they are connected by a chain of pairs whose similarity is at
/// least `threshold` (single linkage).
///
/// Returns clusters of item *indices*, each sorted, the cluster list
/// sorted by its smallest member — deterministic for a deterministic
/// `similarity`.
///
/// Single linkage is the right shape for the paper's subsets: a family
/// like {MobileNetV2 … VGG-16} spans a wide compute range, but adjacent
/// members are pairwise similar, so the chain keeps the family together
/// while disconnected singletons (PEANUT, GPT-2, Whisper) stay alone.
///
/// # Panics
///
/// Panics if `similarity` returns NaN.
///
/// # Example
///
/// ```
/// use claire_graph::agglomerate_by;
///
/// let xs = [1.0_f64, 1.1, 5.0, 5.05, 40.0];
/// let clusters = agglomerate_by(xs.len(), 0.8, |i, j| {
///     let (a, b) = (xs[i], xs[j]);
///     a.min(b) / a.max(b)
/// });
/// assert_eq!(clusters, vec![vec![0, 1], vec![2, 3], vec![4]]);
/// ```
pub fn agglomerate_by<F>(n: usize, threshold: f64, mut similarity: F) -> Vec<Vec<usize>>
where
    F: FnMut(usize, usize) -> f64,
{
    // Union-find over item indices.
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for i in 0..n {
        for j in (i + 1)..n {
            let s = similarity(i, j);
            assert!(!s.is_nan(), "similarity({i}, {j}) is NaN");
            if s >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                }
            }
        }
    }

    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        clusters.entry(r).or_default().push(i);
    }
    clusters.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_no_clusters() {
        let c = agglomerate_by(0, 0.5, |_, _| 1.0);
        assert!(c.is_empty());
    }

    #[test]
    fn all_similar_gives_one_cluster() {
        let c = agglomerate_by(4, 0.5, |_, _| 0.9);
        assert_eq!(c, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn all_dissimilar_gives_singletons() {
        let c = agglomerate_by(3, 0.5, |_, _| 0.1);
        assert_eq!(c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn chaining_links_transitively() {
        // 0~1 and 1~2 similar, 0~2 not: single linkage joins all three.
        let sim = |i: usize, j: usize| {
            if i.abs_diff(j) == 1 {
                0.9
            } else {
                0.0
            }
        };
        let c = agglomerate_by(3, 0.5, sim);
        assert_eq!(c, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn threshold_is_inclusive() {
        let c = agglomerate_by(2, 0.5, |_, _| 0.5);
        assert_eq!(c, vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_similarity_panics() {
        agglomerate_by(2, 0.5, |_, _| f64::NAN);
    }
}
