//! Single-linkage agglomerative clustering over an arbitrary pairwise
//! similarity — the mechanism behind Algorithm 1 line 14: "Separate the
//! algorithms into different subsets (TR_k) based on weighted Jaccard
//! Similarity".

/// Groups `items` into clusters: two items end up in the same cluster
/// when they are connected by a chain of pairs whose similarity is at
/// least `threshold` (single linkage).
///
/// Returns clusters of item *indices*, each sorted, the cluster list
/// sorted by its smallest member — deterministic for a deterministic
/// `similarity`.
///
/// Single linkage is the right shape for the paper's subsets: a family
/// like {MobileNetV2 … VGG-16} spans a wide compute range, but adjacent
/// members are pairwise similar, so the chain keeps the family together
/// while disconnected singletons (PEANUT, GPT-2, Whisper) stay alone.
///
/// # Panics
///
/// Panics if `similarity` returns NaN.
///
/// # Example
///
/// ```
/// use claire_graph::agglomerate_by;
///
/// let xs = [1.0_f64, 1.1, 5.0, 5.05, 40.0];
/// let clusters = agglomerate_by(xs.len(), 0.8, |i, j| {
///     let (a, b) = (xs[i], xs[j]);
///     a.min(b) / a.max(b)
/// });
/// assert_eq!(clusters, vec![vec![0, 1], vec![2, 3], vec![4]]);
/// ```
pub fn agglomerate_by<F>(n: usize, threshold: f64, mut similarity: F) -> Vec<Vec<usize>>
where
    F: FnMut(usize, usize) -> f64,
{
    // Union-find over item indices.
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for i in 0..n {
        for j in (i + 1)..n {
            let s = similarity(i, j);
            assert!(!s.is_nan(), "similarity({i}, {j}) is NaN");
            if s >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                }
            }
        }
    }

    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        clusters.entry(r).or_default().push(i);
    }
    clusters.into_values().collect()
}

/// [`agglomerate_by`] driven by a precomputed similarity matrix (e.g.
/// [`crate::weighted_jaccard_matrix`]): same pair-scan order, same
/// inclusive threshold, same deterministic output — without
/// recomputing each similarity inside the scan.
///
/// # Panics
///
/// Panics if the matrix is not square or contains NaN above the
/// diagonal.
pub fn agglomerate_matrix(matrix: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let n = matrix.len();
    assert!(
        matrix.iter().all(|row| row.len() == n),
        "similarity matrix must be square"
    );
    agglomerate_by(n, threshold, |i, j| matrix[i][j])
}

/// [`agglomerate_matrix`] that additionally folds a payload per item
/// into one merged payload per cluster, **incrementally**: each
/// union-find union merges the absorbed root's payload into the
/// surviving root's via `merge`, so an accumulated structure (a merged
/// universal graph, a summed weight vector) is built once instead of
/// being re-merged from scratch after clustering.
///
/// Merges happen in pair-scan order (`i` ascending, then `j > i`), with
/// the smaller root always surviving; the returned list pairs each
/// sorted index cluster with its merged payload, ordered by smallest
/// member — exactly the clusters [`agglomerate_matrix`] returns.
///
/// # Panics
///
/// Panics if `payloads.len() != matrix.len()`, the matrix is not
/// square, or it contains NaN above the diagonal.
pub fn agglomerate_merge<T, M>(
    payloads: Vec<T>,
    matrix: &[Vec<f64>],
    threshold: f64,
    mut merge: M,
) -> Vec<(Vec<usize>, T)>
where
    M: FnMut(&mut T, T),
{
    let n = matrix.len();
    assert!(
        matrix.iter().all(|row| row.len() == n),
        "similarity matrix must be square"
    );
    assert_eq!(payloads.len(), n, "one payload per item");

    let mut parent: Vec<usize> = (0..n).collect();
    let mut payload: Vec<Option<T>> = payloads.into_iter().map(Some).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (i, row) in matrix.iter().enumerate() {
        for (j, &s) in row.iter().enumerate().skip(i + 1) {
            assert!(!s.is_nan(), "similarity({i}, {j}) is NaN");
            if s >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                    // Both are union-find roots, so both payloads are
                    // present; stated as control flow to stay total.
                    if let (Some(absorbed), Some(target)) =
                        (payload[hi].take(), payload[lo].as_mut())
                    {
                        merge(target, absorbed);
                    }
                }
            }
        }
    }

    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        clusters.entry(r).or_default().push(i);
    }
    clusters
        .into_iter()
        .filter_map(|(root, members)| payload[root].take().map(|p| (members, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_no_clusters() {
        let c = agglomerate_by(0, 0.5, |_, _| 1.0);
        assert!(c.is_empty());
    }

    #[test]
    fn all_similar_gives_one_cluster() {
        let c = agglomerate_by(4, 0.5, |_, _| 0.9);
        assert_eq!(c, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn all_dissimilar_gives_singletons() {
        let c = agglomerate_by(3, 0.5, |_, _| 0.1);
        assert_eq!(c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn chaining_links_transitively() {
        // 0~1 and 1~2 similar, 0~2 not: single linkage joins all three.
        let sim = |i: usize, j: usize| {
            if i.abs_diff(j) == 1 {
                0.9
            } else {
                0.0
            }
        };
        let c = agglomerate_by(3, 0.5, sim);
        assert_eq!(c, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn threshold_is_inclusive() {
        let c = agglomerate_by(2, 0.5, |_, _| 0.5);
        assert_eq!(c, vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_similarity_panics() {
        agglomerate_by(2, 0.5, |_, _| f64::NAN);
    }

    fn chain_matrix() -> Vec<Vec<f64>> {
        // 0~1, 1~2 similar; 3 isolated.
        let mut m = vec![vec![0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        m[0][1] = 0.9;
        m[1][0] = 0.9;
        m[1][2] = 0.9;
        m[2][1] = 0.9;
        m
    }

    #[test]
    fn matrix_variant_matches_closure_variant() {
        let m = chain_matrix();
        let a = agglomerate_matrix(&m, 0.5);
        let b = agglomerate_by(4, 0.5, |i, j| m[i][j]);
        assert_eq!(a, b);
        assert_eq!(a, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn merge_variant_accumulates_payloads_incrementally() {
        let m = chain_matrix();
        let merged = agglomerate_merge(vec![1_u64, 10, 100, 1000], &m, 0.5, |acc, x| *acc += x);
        assert_eq!(merged, vec![(vec![0, 1, 2], 111), (vec![3], 1000)]);
    }

    #[test]
    fn merge_variant_clusters_match_matrix_variant() {
        let m = chain_matrix();
        let merged = agglomerate_merge(vec![(); 4], &m, 0.5, |_, _| {});
        let clusters: Vec<Vec<usize>> = merged.into_iter().map(|(c, _)| c).collect();
        assert_eq!(clusters, agglomerate_matrix(&m, 0.5));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_panics() {
        agglomerate_matrix(&[vec![1.0, 0.5], vec![0.5]], 0.5);
    }

    #[test]
    #[should_panic(expected = "one payload per item")]
    fn payload_count_mismatch_panics() {
        agglomerate_merge(vec![1], &chain_matrix(), 0.5, |a: &mut i32, b| *a += b);
    }
}
