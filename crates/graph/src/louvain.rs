//! Louvain community detection (Blondel et al., 2008), implemented
//! from scratch for the chiplet-clustering step of CLAIRE.
//!
//! "The clustering algorithm groups nodes based on edge weights,
//! grouping frequently communicating nodes together and placing nodes
//! with low inter-node communication in different chiplets to reduce
//! NoP communication energy overhead" — i.e. classic modularity
//! maximisation over the communication-volume graph.
//!
//! The hot path runs over the flat [`CsrGraph`] kernel representation
//! with per-pass scratch buffers reused across levels; the original
//! `BTreeMap`-backed implementation is preserved as
//! [`louvain_reference`] so the property tests can pin bit-identical
//! partitions and the benches can measure against the map baseline.

use crate::csr::{csr_from_pairs, degrees, CsrGraph};
use crate::graph::WeightedGraph;

/// An open interval `(lo, hi)` of resolutions γ over which a Louvain
/// run is **certified** to take the exact same sequence of comparison
/// outcomes — and therefore produce the bit-identical partition and
/// pass sequence — as the run that was observed.
///
/// Produced by [`louvain_csr_certified`]. The certificate is the
/// warm-start contract of the chiplet-count escalation loop: when the
/// escalated resolution `γ'` satisfies [`GammaInterval::contains`],
/// the prior partition can be reused without re-running Louvain.
///
/// Soundness: every γ-dependent branch in Louvain is one of the two
/// gain comparisons in the local-moving phase, and each comparison
/// `gain > best_gain ± 1e-12` is affine in γ once the γ-independent
/// operands (`w_to`, `comm_degree`, degrees, `2m`) are fixed by the
/// execution path so far. Each observed comparison therefore pins a
/// half-line of resolutions that provably reproduce its outcome, with
/// the float-evaluation error of both sides over-approximated by a
/// conservative `O(ε)` margin; the interval is the intersection. Any
/// comparison too close to its threshold for the margin to decide
/// collapses the interval to empty (never an unsound reuse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaInterval {
    lo: f64,
    hi: f64,
}

/// Conservative multiple of machine epsilon bounding the relative
/// float-evaluation error of one gain comparison (true accumulated
/// error is ~10 ulp; 64 leaves headroom for the bound arithmetic
/// itself).
const CERT_EPS: f64 = 64.0 * f64::EPSILON;

impl GammaInterval {
    /// The no-constraint interval `(0, ∞)` — e.g. for edgeless graphs,
    /// whose partition is γ-independent.
    fn unbounded() -> Self {
        GammaInterval {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// Exclusive lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Exclusive upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// True when no resolution is certified (a comparison sat too
    /// close to its tie window to decide robustly).
    // `!(lo < hi)` rather than `lo >= hi`: a NaN bound must read as
    // empty, never as certified.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn is_empty(&self) -> bool {
        !(self.lo < self.hi)
    }

    /// True when `gamma` is strictly inside the certified interval:
    /// running Louvain at `gamma` is guaranteed bit-identical to the
    /// observed run.
    pub fn contains(&self, gamma: f64) -> bool {
        gamma.is_finite() && gamma > self.lo && gamma < self.hi
    }

    fn collapse(&mut self) {
        self.lo = f64::INFINITY;
        self.hi = 0.0;
    }

    /// Tightens the upper bound to (just under) `bound`; the relative
    /// shave absorbs the rounding of the bound computation itself.
    fn restrict_hi(&mut self, bound: f64) {
        if bound.is_nan() {
            self.collapse();
            return;
        }
        let shaved = if bound.is_finite() {
            bound - bound.abs() * 1e-9
        } else {
            bound
        };
        if shaved < self.hi {
            self.hi = shaved;
        }
    }

    /// Tightens the lower bound to (just over) `bound`.
    fn restrict_lo(&mut self, bound: f64) {
        if bound.is_nan() {
            self.collapse();
            return;
        }
        let grown = if bound.is_finite() {
            bound + bound.abs() * 1e-9
        } else {
            bound
        };
        if grown > self.lo {
            self.lo = grown;
        }
    }
}

/// Observer of the γ-dependent gain comparisons inside
/// [`local_move`]. The no-op impl ([`NoCert`]) monomorphises the hot
/// path back to the original code; [`GammaInterval`] accumulates the
/// certified resolution interval.
trait CertSink {
    /// One comparison `gain(c) > best_gain + t` with operands
    /// `gain(x) = w_x − γ·d·cd_x/m2`; `outcome` is the observed float
    /// result.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &mut self,
        gamma: f64,
        d: f64,
        m2: f64,
        w_c: f64,
        cd_c: f64,
        w_b: f64,
        cd_b: f64,
        t: f64,
        outcome: bool,
    );
}

/// Zero-cost sink for the uncertified path.
struct NoCert;

impl CertSink for NoCert {
    #[inline(always)]
    fn observe(
        &mut self,
        _gamma: f64,
        _d: f64,
        _m2: f64,
        _w_c: f64,
        _cd_c: f64,
        _w_b: f64,
        _cd_b: f64,
        _t: f64,
        _outcome: bool,
    ) {
    }
}

impl CertSink for GammaInterval {
    fn observe(
        &mut self,
        _gamma: f64,
        d: f64,
        m2: f64,
        w_c: f64,
        cd_c: f64,
        w_b: f64,
        cd_b: f64,
        t: f64,
        outcome: bool,
    ) {
        if self.is_empty() {
            return;
        }
        if w_c == w_b && cd_c == cd_b {
            // Bit-equal operands: gain(c) ≡ best_gain at *every* γ.
            // For the promote window (t > 0), `g > fl(g + t)` is false
            // for all γ (round-to-nearest never rounds `g + t` below
            // `g` for t > 0), so the outcome is γ-independent. The tie
            // window (t < 0) turns on the rounding of `g` itself,
            // which varies with γ — uncertifiable.
            if t <= 0.0 {
                self.collapse();
            }
            return;
        }
        // Algebraic form of the comparison: A > γ·B with
        //   A = (w_c − w_b) − t,   B = d·(cd_c − cd_b)/m2,
        // and a float-evaluation error of both sides bounded by
        // e0 + γ·e1 (γ-independent and γ-proportional parts).
        let x_c = d * cd_c / m2;
        let x_b = d * cd_b / m2;
        let a = (w_c - w_b) - t;
        let b = x_c - x_b;
        let e0 = CERT_EPS * (w_c.abs() + w_b.abs() + t.abs());
        let e1 = CERT_EPS * (x_c.abs() + x_b.abs());
        if !(a.is_finite() && b.is_finite() && e0.is_finite() && e1.is_finite()) {
            self.collapse();
            return;
        }
        if outcome {
            // Certified true at γ' iff A − γ'B > e0 + γ'e1, i.e.
            // A − e0 > γ'(B + e1).
            let p = b + e1;
            if p > 0.0 {
                self.restrict_hi((a - e0) / p);
            } else if p < 0.0 {
                self.restrict_lo((a - e0) / p);
            } else if a <= e0 {
                self.collapse();
            }
        } else {
            // Certified false at γ' iff γ'B − A > e0 + γ'e1, i.e.
            // γ'(B − e1) > A + e0.
            let q = b - e1;
            if q > 0.0 {
                self.restrict_lo((a + e0) / q);
            } else if q < 0.0 {
                self.restrict_hi((a + e0) / q);
            } else if a >= -e0 {
                self.collapse();
            }
        }
    }
}

/// A disjoint partition of a graph's nodes into communities
/// ("chiplets" in the CLAIRE flow).
///
/// Communities are sorted by their smallest member, and members within
/// a community are sorted, so results are fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition<N> {
    communities: Vec<Vec<N>>,
}

impl<N: Ord + Clone> Partition<N> {
    /// Builds a partition from explicit communities (e.g. a baseline
    /// to compare modularity against). Members are sorted and
    /// communities ordered by smallest member.
    ///
    /// # Panics
    ///
    /// Panics if a node appears in more than one community or a
    /// community is empty.
    pub fn from_communities(mut communities: Vec<Vec<N>>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for c in &communities {
            assert!(!c.is_empty(), "empty community");
            for n in c {
                assert!(seen.insert(n.clone()), "node appears in two communities");
            }
        }
        for c in &mut communities {
            c.sort();
        }
        communities.sort_by(|a, b| a[0].cmp(&b[0]));
        Partition { communities }
    }

    /// The communities, each a sorted list of node keys.
    pub fn communities(&self) -> &[Vec<N>] {
        &self.communities
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True when the partition is empty (empty input graph).
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Community sizes, in community order.
    pub fn sizes(&self) -> Vec<usize> {
        self.communities.iter().map(Vec::len).collect()
    }

    /// The community index containing `n`, if any.
    pub fn community_of(&self, n: &N) -> Option<usize> {
        self.communities
            .iter()
            .position(|c| c.binary_search(n).is_ok())
    }

    fn from_assignment(nodes: &[N], assignment: &[usize]) -> Self {
        let max = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut communities: Vec<Vec<N>> = vec![Vec::new(); max];
        for (i, &c) in assignment.iter().enumerate() {
            communities[c].push(nodes[i].clone());
        }
        communities.retain(|c| !c.is_empty());
        for c in &mut communities {
            c.sort();
        }
        communities.sort_by(|a, b| a[0].cmp(&b[0]));
        Partition { communities }
    }
}

/// One aggregation level of the CSR pass hierarchy. The first level
/// borrows the caller's [`CsrGraph`] arrays; aggregated levels own
/// theirs.
struct LevelView<'a> {
    offsets: &'a [u32],
    targets: &'a [u32],
    weights: &'a [f64],
    self_loop: &'a [f64],
    degree: &'a [f64],
    m2: f64,
}

struct Level {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    self_loop: Vec<f64>,
    degree: Vec<f64>,
    m2: f64,
}

impl Level {
    fn view(&self) -> LevelView<'_> {
        LevelView {
            offsets: &self.offsets,
            targets: &self.targets,
            weights: &self.weights,
            self_loop: &self.self_loop,
            degree: &self.degree,
            m2: self.m2,
        }
    }
}

impl LevelView<'_> {
    fn node_count(&self) -> usize {
        self.self_loop.len()
    }
}

/// Reusable per-pass scratch. Allocated once per `louvain_csr_passes`
/// call and recycled across levels (levels only shrink), replacing the
/// per-move map allocations of the old implementation.
#[derive(Default)]
struct Scratch {
    /// Weight from the node under consideration to each community;
    /// kept all-zero between nodes via `touched`.
    w_to: Vec<f64>,
    touched: Vec<usize>,
    community: Vec<usize>,
    comm_degree: Vec<f64>,
    /// Community -> dense renumbering used by `aggregate`.
    renum: Vec<usize>,
    /// (lo, hi, w) inter-community edge entries used by `aggregate`.
    entries: Vec<(u32, u32, f64)>,
    pairs: Vec<(u32, u32, f64)>,
}

/// One local-moving phase over `view`; leaves the node→community
/// assignment in `s.community` and returns whether anything moved.
///
/// Bit-identical to the map-based phase: nodes are visited in index
/// (= key) order, each row's neighbour weights accumulate in ascending
/// neighbour order, and ties break toward the smaller community index
/// within the same 1e-12 window.
///
/// With [`NoCert`] this monomorphises to exactly the original phase
/// (same float expressions, same evaluation order), keeping the
/// uncertified path bit-identical and overhead-free; `cert` receives
/// every γ-dependent comparison.
fn local_move_observed<C: CertSink>(
    view: &LevelView<'_>,
    resolution: f64,
    s: &mut Scratch,
    cert: &mut C,
) -> bool {
    let n = view.node_count();
    s.community.clear();
    s.community.extend(0..n);
    s.comm_degree.clear();
    s.comm_degree.extend_from_slice(view.degree);
    if s.w_to.len() < n {
        s.w_to.resize(n, 0.0);
    }
    s.touched.clear();
    let mut any_moved = false;

    loop {
        let mut moved = false;
        for i in 0..n {
            let old = s.community[i];
            // Gather weights to neighbouring communities.
            let (row_start, row_end) = (view.offsets[i] as usize, view.offsets[i + 1] as usize);
            for e in row_start..row_end {
                let c = s.community[view.targets[e] as usize];
                if s.w_to[c] == 0.0 {
                    s.touched.push(c);
                }
                s.w_to[c] += view.weights[e];
            }
            // Remove i from its community.
            s.comm_degree[old] -= view.degree[i];

            // Best community by modularity gain:
            // ΔQ ∝ w_to[c] − γ · k_i · Σ_tot(c) / 2m
            let mut best = old;
            let mut best_gain =
                s.w_to[old] - resolution * view.degree[i] * s.comm_degree[old] / view.m2;
            for &c in &s.touched {
                let gain = s.w_to[c] - resolution * view.degree[i] * s.comm_degree[c] / view.m2;
                let promote = gain > best_gain + 1e-12;
                cert.observe(
                    resolution,
                    view.degree[i],
                    view.m2,
                    s.w_to[c],
                    s.comm_degree[c],
                    s.w_to[best],
                    s.comm_degree[best],
                    1e-12,
                    promote,
                );
                let take = if promote {
                    true
                } else {
                    let within = gain > best_gain - 1e-12;
                    // The tie outcome only steers execution when
                    // `c < best`; otherwise the branch is not taken
                    // either way, so no certificate constraint arises.
                    if c < best {
                        cert.observe(
                            resolution,
                            view.degree[i],
                            view.m2,
                            s.w_to[c],
                            s.comm_degree[c],
                            s.w_to[best],
                            s.comm_degree[best],
                            -1e-12,
                            within,
                        );
                    }
                    within && c < best
                };
                if take {
                    best = c;
                    best_gain = gain;
                }
            }

            s.comm_degree[best] += view.degree[i];
            if best != old {
                s.community[i] = best;
                moved = true;
                any_moved = true;
            }
            for &c in &s.touched {
                s.w_to[c] = 0.0;
            }
            s.touched.clear();
        }
        if !moved {
            break;
        }
    }
    any_moved
}

/// Aggregates communities into super-nodes; returns the aggregated
/// level and the node→super-node mapping.
///
/// Reproduces the map-based aggregation's float summation order: edge
/// entries are collected in (node, row-position) visit order and a
/// *stable* sort groups each community pair without reordering its
/// contributions, so run-accumulation matches the old `BTreeMap`
/// entry-accumulation term for term.
fn aggregate(view: &LevelView<'_>, s: &mut Scratch) -> (Level, Vec<usize>) {
    let n = view.node_count();
    // Renumber communities densely, in first-appearance (node) order.
    s.renum.clear();
    s.renum.resize(n, usize::MAX);
    let mut next = 0;
    for &c in &s.community {
        if s.renum[c] == usize::MAX {
            s.renum[c] = next;
            next += 1;
        }
    }
    let mapping: Vec<usize> = s.community.iter().map(|&c| s.renum[c]).collect();

    let mut self_loop = vec![0.0; next];
    s.entries.clear();
    for (i, &ci) in mapping.iter().enumerate() {
        self_loop[ci] += view.self_loop[i];
        let (row_start, row_end) = (view.offsets[i] as usize, view.offsets[i + 1] as usize);
        for e in row_start..row_end {
            let j = view.targets[e] as usize;
            if j < i {
                continue; // each undirected pair once
            }
            let cj = mapping[j];
            if ci == cj {
                self_loop[ci] += view.weights[e];
            } else {
                let (lo, hi) = (ci.min(cj) as u32, ci.max(cj) as u32);
                s.entries.push((lo, hi, view.weights[e]));
            }
        }
    }
    s.entries.sort_by_key(|x| (x.0, x.1));
    s.pairs.clear();
    for &(lo, hi, w) in &s.entries {
        match s.pairs.last_mut() {
            Some(p) if p.0 == lo && p.1 == hi => p.2 += w,
            _ => s.pairs.push((lo, hi, w)),
        }
    }
    let (offsets, targets, weights) = csr_from_pairs(next, &s.pairs);
    let (degree, m2) = degrees(&offsets, &weights, &self_loop);
    (
        Level {
            offsets,
            targets,
            weights,
            self_loop,
            degree,
            m2,
        },
        mapping,
    )
}

/// Runs Louvain modularity clustering on the undirected view of `g`.
///
/// `resolution` is the γ of generalised modularity: 1.0 is classic
/// Louvain; higher values produce more, smaller communities (more
/// chiplets), lower values fewer, larger ones.
///
/// Nodes with no edges each form their own community. Deterministic:
/// ties are broken toward the smaller community index and nodes are
/// visited in key order.
///
/// # Panics
///
/// Panics if `resolution` is not finite and positive.
pub fn louvain<N: Ord + Clone>(g: &WeightedGraph<N>, resolution: f64) -> Partition<N> {
    louvain_csr(&CsrGraph::from_weighted(g), resolution)
}

/// [`louvain`], but returning the partition after **every pass**: the
/// initial all-singletons partition first, then one entry per
/// local-move + aggregation round, ending with the final result
/// (`louvain` returns the last element). Each pass only applies
/// positive-gain moves, so modularity is non-decreasing along the
/// returned sequence — the invariant the property tests pin.
///
/// # Panics
///
/// Panics if `resolution` is not finite and positive.
pub fn louvain_passes<N: Ord + Clone>(g: &WeightedGraph<N>, resolution: f64) -> Vec<Partition<N>> {
    louvain_csr_passes(&CsrGraph::from_weighted(g), resolution)
}

/// [`louvain`] over a prebuilt [`CsrGraph`] — the zero-rebuild entry
/// point for callers that cluster the same graph repeatedly (e.g. the
/// chiplet-count escalation loop sweeping `resolution`).
pub fn louvain_csr<N: Ord + Clone>(csr: &CsrGraph<N>, resolution: f64) -> Partition<N> {
    louvain_csr_counted(csr, resolution).0
}

/// [`louvain_csr`] that also reports how many improvement passes ran
/// (the pass count excludes the initial singleton partition, so a
/// graph where no move improves modularity reports zero passes). The
/// returned partition is bit-identical to [`louvain_csr`]'s — the
/// count is observational only.
pub fn louvain_csr_counted<N: Ord + Clone>(
    csr: &CsrGraph<N>,
    resolution: f64,
) -> (Partition<N>, usize) {
    let mut passes = louvain_csr_passes(csr, resolution);
    let count = passes.len().saturating_sub(1);
    // Passes always holds at least the initial partition; the fallback
    // (empty partition) is unreachable but keeps the function total.
    let partition = passes
        .pop()
        .unwrap_or_else(|| Partition::from_communities(Vec::new()));
    (partition, count)
}

/// [`louvain_passes`] over a prebuilt [`CsrGraph`].
///
/// # Panics
///
/// Panics if `resolution` is not finite and positive.
pub fn louvain_csr_passes<N: Ord + Clone>(csr: &CsrGraph<N>, resolution: f64) -> Vec<Partition<N>> {
    louvain_csr_passes_observed(csr, resolution, &mut NoCert)
}

/// [`louvain_csr_passes`] that also returns the certified
/// γ-interval: every resolution strictly inside the interval is
/// guaranteed to reproduce the exact pass sequence (and therefore the
/// final partition) bit-for-bit. The pass sequence itself is
/// bit-identical to [`louvain_csr_passes`]'s.
///
/// # Panics
///
/// Panics if `resolution` is not finite and positive.
pub fn louvain_csr_passes_certified<N: Ord + Clone>(
    csr: &CsrGraph<N>,
    resolution: f64,
) -> (Vec<Partition<N>>, GammaInterval) {
    let mut cert = GammaInterval::unbounded();
    let passes = louvain_csr_passes_observed(csr, resolution, &mut cert);
    (passes, cert)
}

/// [`louvain_csr_counted`] plus the certified γ-interval — the
/// warm-start entry point for resolution-escalation loops. Partition
/// and pass count are bit-identical to [`louvain_csr_counted`]'s.
///
/// # Panics
///
/// Panics if `resolution` is not finite and positive.
pub fn louvain_csr_certified<N: Ord + Clone>(
    csr: &CsrGraph<N>,
    resolution: f64,
) -> (Partition<N>, usize, GammaInterval) {
    let (mut passes, cert) = louvain_csr_passes_certified(csr, resolution);
    let count = passes.len().saturating_sub(1);
    let partition = passes
        .pop()
        .unwrap_or_else(|| Partition::from_communities(Vec::new()));
    (partition, count, cert)
}

fn louvain_csr_passes_observed<N: Ord + Clone, C: CertSink>(
    csr: &CsrGraph<N>,
    resolution: f64,
    cert: &mut C,
) -> Vec<Partition<N>> {
    assert!(
        resolution.is_finite() && resolution > 0.0,
        "resolution must be positive"
    );
    if csr.is_empty() {
        return vec![Partition {
            communities: Vec::new(),
        }];
    }
    // node -> current community, threaded through passes.
    let mut assignment: Vec<usize> = (0..csr.node_count()).collect();
    let mut passes = vec![Partition::from_assignment(csr.keys(), &assignment)];
    if csr.m2() == 0.0 {
        // No edges: singleton communities.
        return passes;
    }

    let mut scratch = Scratch::default();
    let first = LevelView {
        offsets: csr.offsets(),
        targets: csr.targets(),
        weights: csr.weights(),
        self_loop: csr.self_loops(),
        degree: csr.degrees(),
        m2: csr.m2(),
    };
    let mut owned: Option<Level> = None;
    loop {
        let view = owned.as_ref().map(Level::view).unwrap_or(LevelView {
            offsets: first.offsets,
            targets: first.targets,
            weights: first.weights,
            self_loop: first.self_loop,
            degree: first.degree,
            m2: first.m2,
        });
        let moved = local_move_observed(&view, resolution, &mut scratch, cert);
        if !moved {
            break;
        }
        let node_count = view.node_count();
        let (aggregated, mapping) = aggregate(&view, &mut scratch);
        for a in &mut assignment {
            *a = mapping[*a];
        }
        passes.push(Partition::from_assignment(csr.keys(), &assignment));
        if aggregated.self_loop.len() == node_count {
            break;
        }
        owned = Some(aggregated);
    }
    passes
}

/// Generalised modularity `Q` of a partition:
///
/// `Q = (1/2m) Σ_ij (A_ij − γ·k_i·k_j/2m) δ(c_i, c_j)`
///
/// with `A_ii` twice the self-loop weight (the standard convention).
/// Returns 0.0 for graphs without edges.
pub fn modularity<N: Ord + Clone>(
    g: &WeightedGraph<N>,
    partition: &Partition<N>,
    resolution: f64,
) -> f64 {
    modularity_csr(&CsrGraph::from_weighted(g), partition, resolution)
}

/// [`modularity`] over a prebuilt [`CsrGraph`].
pub fn modularity_csr<N: Ord + Clone>(
    csr: &CsrGraph<N>,
    partition: &Partition<N>,
    resolution: f64,
) -> f64 {
    let n = csr.node_count();
    if n == 0 || csr.m2() == 0.0 {
        return 0.0;
    }
    // The partition covers every graph node; an uncovered node (never
    // produced by the kernels here) gets a sentinel community of its
    // own instead of panicking.
    let comm: Vec<usize> = csr
        .keys()
        .iter()
        .enumerate()
        .map(|(i, k)| partition.community_of(k).unwrap_or(usize::MAX - i))
        .collect();
    let (degree, m2) = (csr.degrees(), csr.m2());

    let mut q = 0.0;
    for i in 0..n {
        // Self-loop term: A_ii = 2·self_loop.
        q += 2.0 * csr.self_loops()[i] - resolution * degree[i] * degree[i] / m2;
        let (row_t, row_w) = csr.row(i);
        for (&j, &w) in row_t.iter().zip(row_w) {
            if comm[i] == comm[j as usize] {
                q += w - resolution * degree[i] * degree[j as usize] / m2;
            }
        }
    }
    // Correct the pair terms we skipped: the loop above double-counts
    // nothing (rows list both directions), but misses k_i·k_j penalties
    // for non-adjacent same-community pairs.
    for i in 0..n {
        let (row_t, _) = csr.row(i);
        for j in 0..n {
            if i != j && comm[i] == comm[j] && row_t.binary_search(&(j as u32)).is_err() {
                q -= resolution * degree[i] * degree[j] / m2;
            }
        }
    }
    q / m2
}

// ---------------------------------------------------------------------
// Map-based reference implementation (pre-CSR), preserved verbatim.
// ---------------------------------------------------------------------

/// Dense internal graph used by the reference implementation.
struct Dense {
    /// adj[i] = (neighbor, weight) with i != neighbor.
    adj: Vec<Vec<(usize, f64)>>,
    /// A_ii / 2 (raw self-loop weight).
    self_loop: Vec<f64>,
    /// k_i = Σ_j≠i A_ij + 2·self_loop_i.
    degree: Vec<f64>,
    /// 2m = Σ_i k_i.
    m2: f64,
}

impl Dense {
    fn from_graph<N: Ord + Clone>(g: &WeightedGraph<N>, index: &[N]) -> Self {
        let n = index.len();
        // Every node is in the sorted index by construction; the
        // fallback keeps the lookup total.
        let pos = |k: &N| index.binary_search(k).unwrap_or(0);
        let mut adj = vec![Vec::new(); n];
        let mut self_loop = vec![0.0; n];
        for ((a, b), w) in g.undirected_edges() {
            let (i, j) = (pos(&a), pos(&b));
            if i == j {
                self_loop[i] += w;
            } else {
                adj[i].push((j, w));
                adj[j].push((i, w));
            }
        }
        let mut degree = vec![0.0; n];
        let mut m2 = 0.0;
        for i in 0..n {
            let k: f64 = adj[i].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self_loop[i];
            degree[i] = k;
            m2 += k;
        }
        Dense {
            adj,
            self_loop,
            degree,
            m2,
        }
    }

    /// One local-moving phase; returns the node→community assignment
    /// and whether anything moved.
    fn local_move(&self, resolution: f64) -> (Vec<usize>, bool) {
        let n = self.adj.len();
        let mut community: Vec<usize> = (0..n).collect();
        let mut comm_degree = self.degree.clone();
        let mut any_moved = false;
        // weight from node i to each community, sparse scratch.
        let mut w_to: Vec<f64> = vec![0.0; n];
        let mut touched: Vec<usize> = Vec::new();

        loop {
            let mut moved = false;
            for i in 0..n {
                let old = community[i];
                for &(j, w) in &self.adj[i] {
                    let c = community[j];
                    if w_to[c] == 0.0 {
                        touched.push(c);
                    }
                    w_to[c] += w;
                }
                comm_degree[old] -= self.degree[i];

                let mut best = old;
                let mut best_gain =
                    w_to[old] - resolution * self.degree[i] * comm_degree[old] / self.m2;
                for &c in &touched {
                    let gain = w_to[c] - resolution * self.degree[i] * comm_degree[c] / self.m2;
                    if gain > best_gain + 1e-12 || (gain > best_gain - 1e-12 && c < best) {
                        best = c;
                        best_gain = gain;
                    }
                }

                comm_degree[best] += self.degree[i];
                if best != old {
                    community[i] = best;
                    moved = true;
                    any_moved = true;
                }
                for &c in &touched {
                    w_to[c] = 0.0;
                }
                touched.clear();
            }
            if !moved {
                break;
            }
        }
        (community, any_moved)
    }

    /// Aggregates communities into super-nodes.
    fn aggregate(&self, community: &[usize]) -> (Dense, Vec<usize>) {
        let mut renum = vec![usize::MAX; community.len()];
        let mut next = 0;
        for &c in community {
            if renum[c] == usize::MAX {
                renum[c] = next;
                next += 1;
            }
        }
        let mapping: Vec<usize> = community.iter().map(|&c| renum[c]).collect();

        let mut self_loop = vec![0.0; next];
        let mut pair_w: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for (i, &ci) in mapping.iter().enumerate() {
            self_loop[ci] += self.self_loop[i];
            for &(j, w) in &self.adj[i] {
                if j < i {
                    continue; // each undirected pair once
                }
                let cj = mapping[j];
                if ci == cj {
                    self_loop[ci] += w;
                } else {
                    let key = (ci.min(cj), ci.max(cj));
                    *pair_w.entry(key).or_insert(0.0) += w;
                }
            }
        }
        let mut adj = vec![Vec::new(); next];
        for (&(a, b), &w) in &pair_w {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        let mut degree = vec![0.0; next];
        let mut m2 = 0.0;
        for i in 0..next {
            let k: f64 = adj[i].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self_loop[i];
            degree[i] = k;
            m2 += k;
        }
        (
            Dense {
                adj,
                self_loop,
                degree,
                m2,
            },
            mapping,
        )
    }
}

/// The pre-CSR, `BTreeMap`-backed [`louvain`] implementation,
/// preserved as the bit-exactness reference: the property tests assert
/// `louvain == louvain_reference` on random graphs, and the `profile`
/// bench uses it as the baseline for the CSR kernel speedup.
pub fn louvain_reference<N: Ord + Clone>(g: &WeightedGraph<N>, resolution: f64) -> Partition<N> {
    louvain_passes_reference(g, resolution)
        .pop()
        .unwrap_or_else(|| Partition::from_communities(Vec::new()))
}

/// The pre-CSR [`louvain_passes`]; see [`louvain_reference`].
///
/// # Panics
///
/// Panics if `resolution` is not finite and positive.
pub fn louvain_passes_reference<N: Ord + Clone>(
    g: &WeightedGraph<N>,
    resolution: f64,
) -> Vec<Partition<N>> {
    assert!(
        resolution.is_finite() && resolution > 0.0,
        "resolution must be positive"
    );
    let index: Vec<N> = g.nodes().map(|(n, _)| n.clone()).collect();
    if index.is_empty() {
        return vec![Partition {
            communities: Vec::new(),
        }];
    }
    let mut assignment: Vec<usize> = (0..index.len()).collect();
    let mut passes = vec![Partition::from_assignment(&index, &assignment)];
    let dense = Dense::from_graph(g, &index);
    if dense.m2 == 0.0 {
        return passes;
    }

    let mut level = dense;
    loop {
        let (community, moved) = level.local_move(resolution);
        if !moved {
            break;
        }
        let (aggregated, mapping) = level.aggregate(&community);
        for a in &mut assignment {
            *a = mapping[*a];
        }
        passes.push(Partition::from_assignment(&index, &assignment));
        if aggregated.adj.len() == level.adj.len() {
            break;
        }
        level = aggregated;
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> WeightedGraph<u32> {
        let mut g = WeightedGraph::new();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 10.0);
        }
        g.add_edge(2, 3, 0.5);
        g
    }

    #[test]
    fn splits_two_triangles() {
        let p = louvain(&two_triangles(), 1.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.communities()[0], vec![0, 1, 2]);
        assert_eq!(p.communities()[1], vec![3, 4, 5]);
    }

    #[test]
    fn complete_graph_is_one_community() {
        let mut g = WeightedGraph::new();
        for i in 0..5_u32 {
            for j in (i + 1)..5 {
                g.add_edge(i, j, 1.0);
            }
        }
        let p = louvain(&g, 1.0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn star_graph_is_one_community() {
        let mut g = WeightedGraph::new();
        for i in 1..6_u32 {
            g.add_edge(0, i, 5.0);
        }
        assert_eq!(louvain(&g, 1.0).len(), 1);
    }

    #[test]
    fn edgeless_nodes_are_singletons() {
        let mut g = WeightedGraph::new();
        g.add_node("a", 1.0);
        g.add_node("b", 1.0);
        let p = louvain(&g, 1.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_graph_empty_partition() {
        let g: WeightedGraph<u32> = WeightedGraph::new();
        assert!(louvain(&g, 1.0).is_empty());
    }

    #[test]
    fn higher_resolution_never_fewer_communities() {
        let g = two_triangles();
        let low = louvain(&g, 0.5).len();
        let high = louvain(&g, 3.0).len();
        assert!(high >= low);
    }

    #[test]
    fn louvain_beats_singletons_on_modularity() {
        let g = two_triangles();
        let p = louvain(&g, 1.0);
        let singles = Partition {
            communities: (0..6_u32).map(|i| vec![i]).collect(),
        };
        assert!(modularity(&g, &p, 1.0) > modularity(&g, &singles, 1.0));
    }

    #[test]
    fn modularity_known_value_single_edge() {
        // One edge: all-in-one community. Q = (1/2m)Σ(A_ij - k_i k_j/2m)
        // = [ (1-1/2)*2 ] / 2 = 0.0? With m2=2: pairs (0,1),(1,0): each
        // w=1, penalty 1*1/2 -> contribution 2*(1-0.5)=1, and self
        // penalties -1*1/2 each = -1. Total 0 -> Q=0.
        let mut g = WeightedGraph::new();
        g.add_edge(0_u32, 1, 1.0);
        let p = Partition {
            communities: vec![vec![0, 1]],
        };
        assert!((modularity(&g, &p, 1.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn modularity_two_cliques_ideal_split() {
        // Classic: two disconnected edges, split communities -> Q = 0.5.
        let mut g = WeightedGraph::new();
        g.add_edge(0_u32, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        let p = Partition {
            communities: vec![vec![0, 1], vec![2, 3]],
        };
        assert!((modularity(&g, &p, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn self_loops_keep_node_in_place() {
        let mut g = WeightedGraph::new();
        g.add_edge(0_u32, 0, 100.0);
        g.add_edge(0, 1, 1.0);
        let p = louvain(&g, 1.0);
        // Strong self-communication does not force a split.
        assert!(p.len() <= 2);
        assert_eq!(p.communities().iter().map(|c| c.len()).sum::<usize>(), 2);
    }

    #[test]
    fn community_of_finds_members() {
        let p = louvain(&two_triangles(), 1.0);
        assert_eq!(p.community_of(&0), Some(0));
        assert_eq!(p.community_of(&5), Some(1));
        assert_eq!(p.community_of(&99), None);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_triangles();
        let a = louvain(&g, 1.0);
        let b = louvain(&g, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn csr_matches_reference_on_fixed_graphs() {
        for gamma in [0.5, 1.0, 1.5, 3.0] {
            let g = two_triangles();
            assert_eq!(louvain(&g, gamma), louvain_reference(&g, gamma));
            assert_eq!(
                louvain_passes(&g, gamma),
                louvain_passes_reference(&g, gamma)
            );
        }
        let mut weird = WeightedGraph::new();
        weird.add_edge("x", "x", 9.0);
        weird.add_edge("x", "y", 0.25);
        weird.add_edge("y", "x", 0.5);
        weird.add_node("lonely", 3.0);
        assert_eq!(louvain(&weird, 1.0), louvain_reference(&weird, 1.0));
    }

    #[test]
    fn certified_run_is_bit_identical_to_plain() {
        let g = two_triangles();
        let csr = CsrGraph::from_weighted(&g);
        for gamma in [0.5, 1.0, 1.5, 3.0] {
            let (p, n, _) = louvain_csr_certified(&csr, gamma);
            let (p2, n2) = louvain_csr_counted(&csr, gamma);
            assert_eq!(p, p2, "partition diverged at γ = {gamma}");
            assert_eq!(n, n2, "pass count diverged at γ = {gamma}");
            let (passes, _) = louvain_csr_passes_certified(&csr, gamma);
            assert_eq!(passes, louvain_csr_passes(&csr, gamma));
        }
    }

    #[test]
    fn certificate_is_sound_across_probes() {
        // Every probe resolution inside the certified interval must
        // reproduce the observed partition bit-for-bit.
        let g = two_triangles();
        let csr = CsrGraph::from_weighted(&g);
        for gamma in [0.5, 1.0, 1.5, 3.0] {
            let (p, _, cert) = louvain_csr_certified(&csr, gamma);
            for probe in [
                gamma * 0.8,
                gamma * 0.99,
                gamma * 1.01,
                gamma * 1.5,
                gamma * 2.0,
            ] {
                if cert.contains(probe) {
                    assert_eq!(
                        louvain_csr(&csr, probe),
                        p,
                        "certificate {cert:?} from γ = {gamma} lied at {probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn certificate_covers_escalation_on_clustered_graph() {
        // Two well-separated triangles: the gain comparisons have wide
        // margins, so the certified interval must cover the observed
        // resolution and the 1.5x escalation step the chiplet loop
        // takes.
        let g = two_triangles();
        let csr = CsrGraph::from_weighted(&g);
        let (p, _, cert) = louvain_csr_certified(&csr, 1.0);
        assert!(cert.contains(1.0), "interval {cert:?} excludes its own γ");
        assert!(
            cert.contains(1.5),
            "interval {cert:?} too narrow for a 1.5x escalation"
        );
        assert_eq!(louvain_csr(&csr, 1.5), p);
    }

    #[test]
    fn edgeless_certificate_is_unbounded() {
        let mut g = WeightedGraph::new();
        g.add_node("a", 1.0);
        g.add_node("b", 1.0);
        let csr = CsrGraph::from_weighted(&g);
        let (_, _, cert) = louvain_csr_certified(&csr, 1.0);
        assert!(cert.contains(1e-300) && cert.contains(1e300));
    }

    #[test]
    fn modularity_csr_reuses_prebuilt_graph() {
        let g = two_triangles();
        let csr = CsrGraph::from_weighted(&g);
        let p = louvain_csr(&csr, 1.0);
        assert_eq!(p, louvain(&g, 1.0));
        assert_eq!(modularity_csr(&csr, &p, 1.0), modularity(&g, &p, 1.0));
    }
}
