//! # claire-graph — weighted graphs, similarity and clustering
//!
//! The graph substrate of the CLAIRE framework (DATE 2025):
//!
//! * [`WeightedGraph`] — the `G(N, E, w_N, w_E)` structure of Step
//!   #TR1, with node weights (execution counts) and edge weights (data
//!   communication volumes), plus universal-graph merging.
//! * [`weighted_jaccard`] — the similarity measure used to partition
//!   the training set into subsets (Algorithm 1, line 14) and to assign
//!   test algorithms to library configurations (Step #TT1).
//! * [`louvain`] — the Louvain community-detection algorithm
//!   (Blondel et al., 2008) used to cluster monolithic-chip graphs into
//!   chiplets (Step #TR3/#TT4), implemented from scratch.
//! * [`agglomerate_by`] — single-linkage agglomerative clustering over
//!   an arbitrary similarity, used to form the algorithm subsets
//!   `TR_k`.
//! * [`CsrGraph`] — the flat, interned CSR kernel representation the
//!   clustering hot paths run over: node keys interned to `u32`
//!   indices, adjacency in offsets/targets/weights arrays, built once
//!   from a [`WeightedGraph`] and convertible back. [`louvain_csr`],
//!   [`weighted_jaccard_matrix`] + [`agglomerate_matrix`] /
//!   [`agglomerate_merge`] are the batch entry points built on it.
//!
//! # Example
//!
//! ```
//! use claire_graph::{louvain, WeightedGraph};
//!
//! // Two triangles joined by a weak bridge split into two chiplets.
//! let mut g = WeightedGraph::new();
//! for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     g.add_edge(a, b, 10.0);
//! }
//! g.add_edge(2, 3, 0.1);
//! let partition = louvain(&g, 1.0);
//! assert_eq!(partition.communities().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cluster;
mod csr;
mod graph;
mod jaccard;
mod louvain;
mod spectral;

pub use cluster::{agglomerate_by, agglomerate_matrix, agglomerate_merge};
pub use csr::CsrGraph;
pub use graph::WeightedGraph;
pub use jaccard::{weighted_jaccard, weighted_jaccard_matrix};
pub use louvain::{
    louvain, louvain_csr, louvain_csr_certified, louvain_csr_counted, louvain_csr_passes,
    louvain_csr_passes_certified, louvain_passes, louvain_passes_reference, louvain_reference,
    modularity, modularity_csr, GammaInterval, Partition,
};
pub use spectral::{spectral_bisect, spectral_bisect_csr, spectral_cluster};
