#!/usr/bin/env python3
"""Soak client for `claire-cli serve --listen <unix-socket>`.

Drives a resident server with mixed hostile traffic — well-formed
customs/assigns/what-ifs, malformed lines, oversized pipelined bursts
that overflow the admission queue, and zero-budget deadlines — while a
seeded serve-layer fault plan drops connections and cuts slow readers
on the server side.

The client tolerates connection-level failures (they are the drill),
but holds the wire to the contract:

  * every received line is JSON, and is either ok:true or a typed
    error with a documented exit code (2..=14);
  * the queue-overflow burst earns at least one code-13 shed;
  * a zero deadline earns at least one code-14 expiry;
  * a malformed line earns at least one code-2 parse error;
  * every ok:true answer for the same pinned request is bit-identical
    (load shedding and faults never contaminate completed work).

Every line sent and received is appended to a JSONL transcript so a
failing soak can be replayed from the artifact.

Usage: serve_soak.py <socket-path> <transcript-path>
"""

import json
import socket
import sys
import time

TYPED_ERROR_CODES = set(range(2, 15))
MODELS = ["Alexnet", "Resnet18", "VGG16", "Mobilenetv2", "SWIN-T", "BERT-base"]
MALFORMED = [
    "this is not json",
    '{"id":9000,"op":"custom"}',
    '{"id":9001,"op":"teleport","model":"Alexnet"}',
    '{"id":9002,"op":"custom","model":"NoSuchNet"}',
    '{"id":9003,"op":"custom","model":"Alexnet","deadline_ms":-1}',
    '[1,2,3]',
]
# The pinned request: repeated verbatim all soak long, every ok answer
# must be bit-identical.
PINNED = {"op": "custom", "model": "Alexnet"}

MIN_REQUESTS = 200
MAX_ROUNDS = 8
BURST_SIZE = 150


class Stats:
    def __init__(self):
        self.sent = 0
        self.received = 0
        self.ok = 0
        self.dropped_connections = 0
        self.error_codes = {}
        self.pinned_results = set()
        self.violations = []


def connect(path, timeout=30.0):
    deadline = time.time() + 30.0
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            sock.settimeout(timeout)
            return sock
        except OSError:
            sock.close()
            if time.time() > deadline:
                raise
            time.sleep(0.2)


def check_reply(raw, stats):
    try:
        reply = json.loads(raw)
    except json.JSONDecodeError:
        stats.violations.append(f"non-JSON line on the wire: {raw!r}")
        return
    if not isinstance(reply, dict):
        stats.violations.append(f"non-object reply: {raw!r}")
        return
    if reply.get("ok") is True:
        stats.ok += 1
        model = (reply.get("result") or {}).get("model")
        if reply.get("op") == "custom" and model == "Alexnet":
            body = {k: v for k, v in reply.items() if k != "id"}
            stats.pinned_results.add(json.dumps(body, sort_keys=True))
        return
    code = reply.get("error", {}).get("code")
    if code not in TYPED_ERROR_CODES:
        stats.violations.append(f"untyped error on the wire: {raw!r}")
        return
    stats.error_codes[code] = stats.error_codes.get(code, 0) + 1


def run_connection(path, lines, transcript, stats):
    """Pipeline `lines`, then read replies until all answered or the
    server ends the connection (the seeded drill does, on purpose)."""
    sock = connect(path)
    try:
        for line in lines:
            transcript.write(json.dumps({"dir": "send", "line": line}) + "\n")
        stats.sent += len(lines)
        try:
            sock.sendall("".join(line + "\n" for line in lines).encode())
        except OSError:
            stats.dropped_connections += 1
        buf = b""
        answered = 0
        while answered < len(lines):
            try:
                chunk = sock.recv(65536)
            except OSError:
                stats.dropped_connections += 1
                return
            if not chunk:
                stats.dropped_connections += 1
                return
            buf += chunk
            while b"\n" in buf:
                raw, buf = buf.split(b"\n", 1)
                raw = raw.decode(errors="replace").strip()
                if not raw:
                    continue
                transcript.write(json.dumps({"dir": "recv", "line": raw}) + "\n")
                stats.received += 1
                check_reply(raw, stats)
                answered += 1
    finally:
        sock.close()


def mixed_lines(round_no):
    """One connection's worth of mixed well-formed traffic, with a
    zero-deadline request and the pinned bit-identity probe woven in."""
    lines = []
    for i, model in enumerate(MODELS):
        rid = round_no * 1000 + i * 10
        lines.append(json.dumps({"id": rid, "op": "custom", "model": model}))
        lines.append(json.dumps({"id": rid + 1, "op": "assign", "model": model}))
        lines.append(
            json.dumps(
                {
                    "id": rid + 2,
                    "op": "what_if",
                    "model": model,
                    "constraints": {"chiplet_area_limit_mm2": 0.5},
                }
            )
        )
    lines.append(
        json.dumps(
            {
                "id": round_no * 1000 + 900,
                "op": "custom",
                "model": "Alexnet",
                "deadline_ms": 0,
            }
        )
    )
    lines.append(json.dumps(dict(PINNED, id=round_no * 1000 + 901)))
    return lines


def burst_lines(round_no):
    """An oversized pipelined burst: far more requests than the
    admission queue holds, written in one sendall."""
    return [
        json.dumps({"id": round_no * 1000000 + i, "op": "assign", "model": "Alexnet"})
        for i in range(BURST_SIZE)
    ]


def quotas_met(stats):
    return (
        stats.sent >= MIN_REQUESTS
        and stats.ok >= 10
        and stats.error_codes.get(2, 0) >= 1
        and stats.error_codes.get(13, 0) >= 1
        and stats.error_codes.get(14, 0) >= 1
    )


def main():
    if len(sys.argv) != 3:
        sys.exit("usage: serve_soak.py <socket-path> <transcript-path>")
    sock_path, transcript_path = sys.argv[1], sys.argv[2]
    stats = Stats()
    with open(transcript_path, "w") as transcript:
        for round_no in range(1, MAX_ROUNDS + 1):
            run_connection(sock_path, mixed_lines(round_no), transcript, stats)
            run_connection(sock_path, MALFORMED, transcript, stats)
            run_connection(sock_path, burst_lines(round_no), transcript, stats)
            if round_no >= 2 and quotas_met(stats):
                break

    print(
        f"soak: sent {stats.sent}, received {stats.received}, ok {stats.ok}, "
        f"dropped connections {stats.dropped_connections}, "
        f"error codes {dict(sorted(stats.error_codes.items()))}"
    )
    for violation in stats.violations[:20]:
        print(f"WIRE VIOLATION: {violation}", file=sys.stderr)
    if stats.violations:
        sys.exit(f"{len(stats.violations)} wire violations (typed errors only)")
    if stats.sent < MIN_REQUESTS:
        sys.exit(f"soak too small: sent {stats.sent} < {MIN_REQUESTS}")
    if stats.ok < 10:
        sys.exit(f"too few successes: {stats.ok}")
    for code, label in [(2, "parse"), (13, "shed"), (14, "deadline")]:
        if stats.error_codes.get(code, 0) < 1:
            sys.exit(f"no code-{code} ({label}) answer observed")
    if len(stats.pinned_results) > 1:
        sys.exit(
            f"pinned request returned {len(stats.pinned_results)} distinct "
            "bodies — completed answers are not bit-identical under load"
        )
    if not stats.pinned_results:
        sys.exit("pinned request never completed — no bit-identity evidence")
    print("soak OK: typed errors only, pinned answers bit-identical")


if __name__ == "__main__":
    main()
