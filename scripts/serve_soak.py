#!/usr/bin/env python3
"""Soak client for `claire-cli serve --listen <unix-socket>`.

Drives a resident server with mixed hostile traffic — well-formed
customs/assigns/what-ifs, malformed lines, oversized pipelined bursts
that overflow the admission queue, and zero-budget deadlines — while a
seeded serve-layer fault plan drops connections and cuts slow readers
on the server side.

The client tolerates connection-level failures (they are the drill),
but holds the wire to the contract:

  * every received line is JSON, and is either ok:true or a typed
    error with a documented exit code (2..=14);
  * the queue-overflow burst earns at least one code-13 shed;
  * a zero deadline earns at least one code-14 expiry;
  * a malformed line earns at least one code-2 parse error;
  * every ok:true answer for the same pinned request is bit-identical
    (load shedding and faults never contaminate completed work; the
    serve-assigned trace_id is the one legitimately varying field);
  * in-band {"op":"stats"} probes interleaved with the hostile
    traffic are answered mid-serve, their counters never move
    backwards between probes, their quantile summaries stay ordered
    (p50 <= p90 <= p99 <= max), and their window rates are present.

Every line sent and received is appended to a JSONL transcript so a
failing soak can be replayed from the artifact.

Usage: serve_soak.py <socket-path> <transcript-path>
       serve_soak.py --validate-events <event-log.jsonl>

The second form validates a `--event-log` file after the server has
drained: every line must parse as one lifecycle event with the schema
fields, and per trace id the stages must advance in lifecycle order
(received -> admitted|shed -> dispatched -> evaluating ->
answered|errored) with exactly one terminal event carrying an outcome
code. Events dropped under pressure are counted by the server
(serve.events_dropped), so a hole in a trace is tolerated — an
out-of-order or duplicated transition is not.
"""

import json
import socket
import sys
import time

TYPED_ERROR_CODES = set(range(2, 15))
MODELS = ["Alexnet", "Resnet18", "VGG16", "Mobilenetv2", "SWIN-T", "BERT-base"]
MALFORMED = [
    "this is not json",
    '{"id":9000,"op":"custom"}',
    '{"id":9001,"op":"teleport","model":"Alexnet"}',
    '{"id":9002,"op":"custom","model":"NoSuchNet"}',
    '{"id":9003,"op":"custom","model":"Alexnet","deadline_ms":-1}',
    '[1,2,3]',
]
# The pinned request: repeated verbatim all soak long, every ok answer
# must be bit-identical.
PINNED = {"op": "custom", "model": "Alexnet"}

MIN_REQUESTS = 200
MAX_ROUNDS = 8
BURST_SIZE = 150


class Stats:
    def __init__(self):
        self.sent = 0
        self.received = 0
        self.ok = 0
        self.dropped_connections = 0
        self.error_codes = {}
        self.pinned_results = set()
        self.violations = []
        self.stats_probes = 0
        self.last_counters = None


def connect(path, timeout=30.0):
    deadline = time.time() + 30.0
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            sock.settimeout(timeout)
            return sock
        except OSError:
            sock.close()
            if time.time() > deadline:
                raise
            time.sleep(0.2)


def check_reply(raw, stats):
    try:
        reply = json.loads(raw)
    except json.JSONDecodeError:
        stats.violations.append(f"non-JSON line on the wire: {raw!r}")
        return
    if not isinstance(reply, dict):
        stats.violations.append(f"non-object reply: {raw!r}")
        return
    if reply.get("ok") is True:
        stats.ok += 1
        model = (reply.get("result") or {}).get("model")
        if reply.get("op") == "custom" and model == "Alexnet":
            # id and the serve-assigned trace_id legitimately vary per
            # request; everything else must be bit-identical.
            body = {k: v for k, v in reply.items() if k not in ("id", "trace_id")}
            stats.pinned_results.add(json.dumps(body, sort_keys=True))
        return
    code = reply.get("error", {}).get("code")
    if code not in TYPED_ERROR_CODES:
        stats.violations.append(f"untyped error on the wire: {raw!r}")
        return
    stats.error_codes[code] = stats.error_codes.get(code, 0) + 1


def run_connection(path, lines, transcript, stats):
    """Pipeline `lines`, then read replies until all answered or the
    server ends the connection (the seeded drill does, on purpose)."""
    sock = connect(path)
    try:
        for line in lines:
            transcript.write(json.dumps({"dir": "send", "line": line}) + "\n")
        stats.sent += len(lines)
        try:
            sock.sendall("".join(line + "\n" for line in lines).encode())
        except OSError:
            stats.dropped_connections += 1
        buf = b""
        answered = 0
        while answered < len(lines):
            try:
                chunk = sock.recv(65536)
            except OSError:
                stats.dropped_connections += 1
                return
            if not chunk:
                stats.dropped_connections += 1
                return
            buf += chunk
            while b"\n" in buf:
                raw, buf = buf.split(b"\n", 1)
                raw = raw.decode(errors="replace").strip()
                if not raw:
                    continue
                transcript.write(json.dumps({"dir": "recv", "line": raw}) + "\n")
                stats.received += 1
                check_reply(raw, stats)
                answered += 1
    finally:
        sock.close()


def stats_probe(path, transcript, stats, probe_no):
    """One in-band {"op":"stats"} round trip: answered mid-serve, with
    monotone counters, ordered quantiles, and present window rates.
    A dropped connection is the drill, not a failure."""
    line = json.dumps({"id": f"probe-{probe_no}", "op": "stats"})
    transcript.write(json.dumps({"dir": "send", "line": line}) + "\n")
    stats.sent += 1
    try:
        sock = connect(path)
    except OSError:
        stats.dropped_connections += 1
        return
    try:
        sock.sendall((line + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                stats.dropped_connections += 1
                return
            buf += chunk
    except OSError:
        stats.dropped_connections += 1
        return
    finally:
        sock.close()
    raw = buf.split(b"\n", 1)[0].decode(errors="replace").strip()
    transcript.write(json.dumps({"dir": "recv", "line": raw}) + "\n")
    stats.received += 1
    try:
        reply = json.loads(raw)
    except json.JSONDecodeError:
        stats.violations.append(f"stats probe answered non-JSON: {raw!r}")
        return
    if reply.get("ok") is not True or not isinstance(reply.get("stats"), dict):
        stats.violations.append(f"stats probe not answered ok: {raw!r}")
        return
    snapshot = reply["stats"]
    counters = snapshot.get("counters")
    if not isinstance(counters, dict) or "serve.requests" not in counters:
        stats.violations.append(f"stats probe missing counters: {raw!r}")
        return
    if stats.last_counters is not None:
        for name, before in stats.last_counters.items():
            after = counters.get(name)
            if not isinstance(after, int) or after < before:
                stats.violations.append(
                    f"counter {name} moved backwards: {before} -> {after}"
                )
    stats.last_counters = counters
    for family in ("queue_wait_us", "latency_us"):
        q = (snapshot.get("quantiles") or {}).get(family)
        if not isinstance(q, dict):
            stats.violations.append(f"stats probe missing quantiles.{family}")
            continue
        if q.get("count", 0) > 0 and not (
            q["p50"] <= q["p90"] <= q["p99"] <= q["max"]
        ):
            stats.violations.append(f"quantiles.{family} out of order: {q}")
    for family in ("requests", "sheds", "deadline_expiries"):
        rate = (snapshot.get("rates") or {}).get(family)
        if not isinstance(rate, dict) or "total" not in rate:
            stats.violations.append(f"stats probe missing rates.{family}")
    stats.stats_probes += 1


def mixed_lines(round_no):
    """One connection's worth of mixed well-formed traffic, with a
    zero-deadline request and the pinned bit-identity probe woven in."""
    lines = []
    for i, model in enumerate(MODELS):
        rid = round_no * 1000 + i * 10
        lines.append(json.dumps({"id": rid, "op": "custom", "model": model}))
        lines.append(json.dumps({"id": rid + 1, "op": "assign", "model": model}))
        lines.append(
            json.dumps(
                {
                    "id": rid + 2,
                    "op": "what_if",
                    "model": model,
                    "constraints": {"chiplet_area_limit_mm2": 0.5},
                }
            )
        )
    lines.append(
        json.dumps(
            {
                "id": round_no * 1000 + 900,
                "op": "custom",
                "model": "Alexnet",
                "deadline_ms": 0,
            }
        )
    )
    lines.append(json.dumps(dict(PINNED, id=round_no * 1000 + 901)))
    return lines


def burst_lines(round_no):
    """An oversized pipelined burst: far more requests than the
    admission queue holds, written in one sendall."""
    return [
        json.dumps({"id": round_no * 1000000 + i, "op": "assign", "model": "Alexnet"})
        for i in range(BURST_SIZE)
    ]


def quotas_met(stats):
    return (
        stats.sent >= MIN_REQUESTS
        and stats.ok >= 10
        and stats.error_codes.get(2, 0) >= 1
        and stats.error_codes.get(13, 0) >= 1
        and stats.error_codes.get(14, 0) >= 1
    )


# Lifecycle stage ranks: a trace's transitions must never regress.
# `shed` shares the admission rank; `answered`/`errored` share the
# terminal rank.
STAGE_RANK = {
    "received": 0,
    "admitted": 1,
    "shed": 1,
    "dispatched": 2,
    "evaluating": 3,
    "answered": 4,
    "errored": 4,
}
TERMINAL_STAGES = {"shed", "answered", "errored"}


def validate_events(path):
    """Validates a --event-log file: schema per line, lifecycle order
    and exactly one terminal outcome per trace id. Exits non-zero on
    the first class of violation found."""
    violations = []
    traces = {}
    lines = 0
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            lines += 1
            try:
                event = json.loads(raw)
            except json.JSONDecodeError:
                violations.append(f"line {lineno}: not JSON: {raw!r}")
                continue
            stage = event.get("event")
            if stage not in STAGE_RANK:
                violations.append(f"line {lineno}: unknown stage {stage!r}")
                continue
            if not isinstance(event.get("t_us"), int) or event["t_us"] < 0:
                violations.append(f"line {lineno}: bad t_us: {raw!r}")
            if not isinstance(event.get("trace"), int):
                violations.append(f"line {lineno}: bad trace id: {raw!r}")
                continue
            if not isinstance(event.get("op"), str):
                violations.append(f"line {lineno}: missing op: {raw!r}")
            if stage == "dispatched" and not isinstance(
                event.get("queue_wait_us"), int
            ):
                violations.append(f"line {lineno}: dispatch without queue wait")
            if stage in TERMINAL_STAGES and not isinstance(event.get("outcome"), int):
                violations.append(f"line {lineno}: terminal stage without outcome")
            traces.setdefault(event["trace"], []).append((lineno, stage))
    if lines == 0:
        sys.exit(f"event log {path} is empty")
    for trace, chain in sorted(traces.items()):
        ranks = [STAGE_RANK[s] for _, s in chain]
        # Drops under pressure may punch holes in a trace, but what
        # did land must advance: never a regression, never a repeat.
        if any(b <= a for a, b in zip(ranks, ranks[1:])):
            violations.append(
                f"trace {trace}: stages regress or repeat: "
                f"{[s for _, s in chain]} (lines {[n for n, _ in chain]})"
            )
        terminals = [s for _, s in chain if s in TERMINAL_STAGES]
        if len(terminals) > 1:
            violations.append(f"trace {trace}: {len(terminals)} terminal events")
    for violation in violations[:20]:
        print(f"EVENT-LOG VIOLATION: {violation}", file=sys.stderr)
    if violations:
        sys.exit(f"{len(violations)} event-log violations in {path}")
    print(
        f"event log OK: {lines} lifecycle events across {len(traces)} traces, "
        "stages ordered, one terminal outcome per trace"
    )


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--validate-events":
        validate_events(sys.argv[2])
        return
    if len(sys.argv) != 3:
        sys.exit(
            "usage: serve_soak.py <socket-path> <transcript-path> | "
            "--validate-events <event-log.jsonl>"
        )
    sock_path, transcript_path = sys.argv[1], sys.argv[2]
    stats = Stats()
    with open(transcript_path, "w") as transcript:
        for round_no in range(1, MAX_ROUNDS + 1):
            stats_probe(sock_path, transcript, stats, round_no * 2 - 1)
            run_connection(sock_path, mixed_lines(round_no), transcript, stats)
            run_connection(sock_path, MALFORMED, transcript, stats)
            # A probe between the hostile rounds: answered while burst
            # work is still queued and in flight.
            stats_probe(sock_path, transcript, stats, round_no * 2)
            run_connection(sock_path, burst_lines(round_no), transcript, stats)
            if round_no >= 2 and quotas_met(stats):
                break

    print(
        f"soak: sent {stats.sent}, received {stats.received}, ok {stats.ok}, "
        f"dropped connections {stats.dropped_connections}, "
        f"stats probes {stats.stats_probes}, "
        f"error codes {dict(sorted(stats.error_codes.items()))}"
    )
    for violation in stats.violations[:20]:
        print(f"WIRE VIOLATION: {violation}", file=sys.stderr)
    if stats.violations:
        sys.exit(f"{len(stats.violations)} wire violations (typed errors only)")
    if stats.sent < MIN_REQUESTS:
        sys.exit(f"soak too small: sent {stats.sent} < {MIN_REQUESTS}")
    if stats.ok < 10:
        sys.exit(f"too few successes: {stats.ok}")
    for code, label in [(2, "parse"), (13, "shed"), (14, "deadline")]:
        if stats.error_codes.get(code, 0) < 1:
            sys.exit(f"no code-{code} ({label}) answer observed")
    if len(stats.pinned_results) > 1:
        sys.exit(
            f"pinned request returned {len(stats.pinned_results)} distinct "
            "bodies — completed answers are not bit-identical under load"
        )
    if not stats.pinned_results:
        sys.exit("pinned request never completed — no bit-identity evidence")
    if stats.stats_probes < 2:
        sys.exit(
            f"only {stats.stats_probes} stats probes answered — "
            "no monotonicity evidence"
        )
    print(
        "soak OK: typed errors only, pinned answers bit-identical, "
        "stats probes monotone"
    )


if __name__ == "__main__":
    main()
