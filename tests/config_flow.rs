//! End-to-end config-file flow: a RunConfig written to disk drives a
//! training run through `into_options`, matching the CLI's --config
//! path.

use claire::core::{Claire, RunConfig};
use claire::model::zoo;

#[test]
fn saved_config_drives_training() {
    let path = std::env::temp_dir().join(format!("claire-flow-{}.json", std::process::id()));
    let mut cfg = RunConfig::default();
    cfg.constraints.latency_slack = 0.8;
    cfg.jaccard_threshold = 0.5;
    cfg.save(&path).expect("save");

    let loaded = RunConfig::load(&path).expect("load");
    assert_eq!(loaded.constraints.latency_slack, 0.8);
    let claire = Claire::new(loaded.into_options());
    let models = [zoo::resnet18(), zoo::gpt2(), zoo::bert_base()];
    let out = claire.train(&models).expect("train under file config");
    assert_eq!(out.customs.len(), 3);
    for (i, m) in models.iter().enumerate() {
        let lib = out.library_of(i).expect("assigned");
        assert!(out.libraries[lib].config.covers(m));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tighter_file_constraints_change_selections() {
    // A smaller area limit must never produce larger designs.
    let mut tight = RunConfig::default();
    tight.constraints.chiplet_area_limit_mm2 = 40.0;
    let loose = RunConfig::default();

    let model = zoo::vgg16();
    let tight_custom = Claire::new(tight.into_options())
        .custom_for(&model)
        .expect("feasible");
    let loose_custom = Claire::new(loose.into_options())
        .custom_for(&model)
        .expect("feasible");
    assert!(tight_custom.report.area_mm2 <= 40.0 + 1e-9);
    assert!(tight_custom.report.area_mm2 <= loose_custom.report.area_mm2 + 1e-9);
}
