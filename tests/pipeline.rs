//! End-to-end integration tests: the full CLAIRE flow on the paper's
//! 13 training + 6 test algorithms, pinning every headline result to
//! its reproduction band (see EXPERIMENTS.md for the paper-vs-measured
//! discussion).

use claire::core::{
    paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy, TestOutput, TrainOutput,
};
use claire::model::zoo;
use std::sync::OnceLock;

fn paper_run() -> &'static (TrainOutput, TestOutput) {
    static RUN: OnceLock<(TrainOutput, TestOutput)> = OnceLock::new();
    RUN.get_or_init(|| {
        let claire = Claire::new(ClaireOptions {
            subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
            ..ClaireOptions::default()
        });
        let train = claire.train(&zoo::training_set()).expect("train");
        let test = claire
            .evaluate_test(&train, &zoo::test_set())
            .expect("test");
        (train, test)
    })
}

#[test]
fn five_library_configurations_emerge() {
    let (train, _) = paper_run();
    // Table III: five library-synthesized configurations.
    assert_eq!(train.libraries.len(), 5);
    assert_eq!(train.customs.len(), 13);
}

#[test]
fn every_training_algorithm_has_full_coverage_on_its_library() {
    let (train, _) = paper_run();
    let models = zoo::training_set();
    for (i, m) in models.iter().enumerate() {
        let lib = train.library_of(i).expect("assigned");
        assert!(
            train.libraries[lib].config.covers(m),
            "{} not covered by its library",
            m.name()
        );
        assert!(train.generic.covers(m), "{} not covered by C_g", m.name());
    }
}

#[test]
fn every_test_algorithm_reaches_100_percent_coverage() {
    let (_, test) = paper_run();
    // "For the algorithms in the test set, the algorithm coverage
    // (C_layer) for these configurations is (100%), as required."
    for r in &test.reports {
        assert!(r.assigned_library.is_some(), "{} unassigned", r.model_name);
        assert_eq!(r.coverage, 1.0, "{} coverage {}", r.model_name, r.coverage);
    }
}

#[test]
fn training_nre_benefit_bands() {
    let (train, _) = paper_run();
    // Table IV: multi-member libraries must be substantially cheaper
    // than the cumulative custom cost; the paper reports 5.99x (C_1)
    // and 3.99x (C_3). Our bands: C_1 in 4x-7x, C_3 in 2x-4.5x.
    let c1 = &train.libraries[0];
    assert_eq!(c1.member_names.len(), 6);
    let benefit1 = c1.cumulative_custom_nre / c1.nre_normalized;
    assert!((4.0..7.0).contains(&benefit1), "C_1 benefit {benefit1}");

    let c3 = &train.libraries[2];
    assert_eq!(c3.member_names.len(), 4);
    let benefit3 = c3.cumulative_custom_nre / c3.nre_normalized;
    assert!((2.0..4.5).contains(&benefit3), "C_3 benefit {benefit3}");
}

#[test]
fn test_nre_benefit_band() {
    let (_, test) = paper_run();
    // Table VI: the paper reports 1.99x-3.99x over the assigned test
    // subsets. Multi-algorithm rows must show a clear benefit.
    let mut max_benefit: f64 = 0.0;
    for (_, names, cstm, nre) in &test.nre_rows {
        let benefit = cstm / nre;
        max_benefit = max_benefit.max(benefit);
        // A library is never meaningfully worse than per-algorithm
        // customs; multi-algorithm subsets should show a real saving
        // (C_3 lands near break-even here because our DPT
        // reconstruction gives it a second, conv-trunk chiplet —
        // see EXPERIMENTS.md).
        assert!(benefit > 0.95, "{names:?} worse than custom: {benefit}");
    }
    assert!(max_benefit >= 1.9, "max test benefit {max_benefit}");
}

#[test]
fn utilization_improvement_band() {
    let (_, test) = paper_run();
    // Table V: 1.6x-4x improvement over the generic configuration.
    for r in &test.reports {
        let ratio = r.utilization_library / r.utilization_generic;
        assert!(
            (1.3..6.0).contains(&ratio),
            "{}: utilization ratio {ratio}",
            r.model_name
        );
        assert!(r.utilization_library <= 1.0 && r.utilization_library > 0.0);
    }
    // The best improvements reach the paper's 3x-4x territory.
    let best = test
        .reports
        .iter()
        .map(|r| r.utilization_library / r.utilization_generic)
        .fold(0.0_f64, f64::max);
    assert!(best >= 3.0, "best utilization ratio {best}");
}

#[test]
fn library_area_close_to_custom_area() {
    let (train, _) = paper_run();
    // "the area of the library-synthesized configurations deviated by
    // only 0.116% from that of the custom configuration". Our DSE
    // picks heterogeneous per-algorithm hardware (the paper's landed
    // on one design point), so the worst per-algorithm deviation is a
    // factor rather than a fraction of a percent: MobileNetV2's custom
    // fits in half the silicon of the CNN library that must also carry
    // VGG-16 (see EXPERIMENTS.md).
    for p in &train.algo_ppa {
        let dev = (p.library.area_mm2 - p.custom.area_mm2).abs() / p.custom.area_mm2;
        assert!(
            dev < 1.50,
            "{}: area deviation {:.1}% (custom {:.1}, library {:.1})",
            p.model_name,
            dev * 100.0,
            p.custom.area_mm2,
            p.library.area_mm2
        );
    }
    // The generic configuration is the largest design.
    let generic_area = train.generic.area_mm2();
    for c in &train.customs {
        assert!(generic_area > c.report.area_mm2, "{}", c.model.name());
    }
}

#[test]
fn energy_varies_little_across_configurations() {
    let (train, _) = paper_run();
    // "the energy consumption varied by only 0.2% across the
    // configurations" (no power gating; identical compute). Our band:
    // < 5% between library and custom for every algorithm.
    for p in &train.algo_ppa {
        let dev = (p.library.energy_j - p.custom.energy_j).abs() / p.custom.energy_j;
        assert!(
            dev < 0.05,
            "{}: energy deviation {:.2}%",
            p.model_name,
            dev * 100.0
        );
    }
}

#[test]
fn latency_constraint_holds_on_library_configs() {
    let (train, _) = paper_run();
    // L_limit: library latency within 1.5x of the custom latency.
    for p in &train.algo_ppa {
        assert!(
            p.library.latency_s <= p.custom.latency_s * 1.5 + 1e-12,
            "{}: library {:.3e}s vs custom {:.3e}s",
            p.model_name,
            p.library.latency_s,
            p.custom.latency_s
        );
    }
}

#[test]
fn every_configuration_validates() {
    let (train, _) = paper_run();
    for cfg in train
        .customs
        .iter()
        .map(|c| &c.config)
        .chain(train.libraries.iter().map(|l| &l.config))
        .chain(std::iter::once(&train.generic))
    {
        cfg.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
    }
}

#[test]
fn chiplets_respect_constraints() {
    let (train, _) = paper_run();
    let limit = 100.0;
    let all_configs = train
        .customs
        .iter()
        .map(|c| &c.config)
        .chain(train.libraries.iter().map(|l| &l.config))
        .chain(std::iter::once(&train.generic));
    for cfg in all_configs {
        assert!(!cfg.chiplets.is_empty(), "{} not clustered", cfg.name);
        for ch in &cfg.chiplets {
            assert!(
                ch.area_mm2 <= limit,
                "{}/{} exceeds area limit: {:.1}",
                cfg.name,
                ch.name,
                ch.area_mm2
            );
            assert!(!ch.classes.is_empty());
        }
    }
}

#[test]
fn power_density_constraint_holds() {
    let (train, _) = paper_run();
    for p in &train.algo_ppa {
        for (label, r) in [
            ("custom", &p.custom),
            ("generic", &p.generic),
            ("library", &p.library),
        ] {
            assert!(
                r.power_density_w_per_mm2() <= 1.0,
                "{} on {label}: PD {:.3}",
                p.model_name,
                r.power_density_w_per_mm2()
            );
        }
    }
}

#[test]
fn conv1d_models_stay_in_their_own_libraries() {
    let (train, _) = paper_run();
    // "The new models, such as GPT2 and Whisper, use a 1D convolution
    // module ... and are grouped separately."
    let models = zoo::training_set();
    let gpt2 = models.iter().position(|m| m.name() == "GPT2").unwrap();
    let whisper = models
        .iter()
        .position(|m| m.name() == "Whisperv3-large")
        .unwrap();
    let gpt2_lib = train.library_of(gpt2).unwrap();
    let whisper_lib = train.library_of(whisper).unwrap();
    assert_eq!(train.libraries[gpt2_lib].members.len(), 1);
    assert_eq!(train.libraries[whisper_lib].members.len(), 1);
}

#[test]
fn default_algorithmic_partition_also_works_end_to_end() {
    // The unpinned (weighted-Jaccard) strategy must run the whole flow
    // and keep the headline properties, even though the exact grouping
    // differs from Table III.
    let claire = Claire::default();
    let train = claire.train(&zoo::training_set()).expect("train");
    let test = claire
        .evaluate_test(&train, &zoo::test_set())
        .expect("test");
    assert!((3..=13).contains(&train.libraries.len()));
    for r in &test.reports {
        assert_eq!(r.coverage, 1.0, "{}", r.model_name);
        assert!(r.utilization_library >= r.utilization_generic);
    }
    // The ResNets end up together under the automatic partition.
    let models = zoo::training_set();
    let r18 = models.iter().position(|m| m.name() == "Resnet18").unwrap();
    let r50 = models.iter().position(|m| m.name() == "Resnet50").unwrap();
    assert_eq!(train.library_of(r18), train.library_of(r50));
}
