//! Integration tests for the extended test set (the paper's
//! future-work direction): every previously idle library receives an
//! algorithm, and the composability gap of a SiLU CNN is surfaced
//! rather than silently mis-assigned.

use claire::core::{paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy};
use claire::model::zoo;

#[test]
fn extended_set_exercises_every_library() {
    let claire = Claire::new(ClaireOptions {
        subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
        ..ClaireOptions::default()
    });
    let train = claire.train(&zoo::training_set()).expect("train");
    let mut tests = zoo::test_set();
    tests.extend(zoo::extended_test_set());
    tests.extend([zoo::unet(), zoo::t5_small(), zoo::clip_vit_b32()]);
    let out = claire.evaluate_test(&train, &tests).expect("test");

    let assigned: std::collections::BTreeSet<_> = out
        .reports
        .iter()
        .filter_map(|r| r.assigned_library)
        .collect();
    assert_eq!(
        assigned.len(),
        train.libraries.len(),
        "every library serves at least one test algorithm"
    );

    let by_name = |n: &str| {
        out.reports
            .iter()
            .find(|r| r.model_name == n)
            .unwrap_or_else(|| panic!("{n} missing"))
    };
    let lib_name = |r: &claire::core::TestReport| {
        train.libraries[r.assigned_library.expect("assigned")]
            .config
            .name
            .clone()
    };

    // Conv1d-bearing algorithms land on the Conv1d libraries.
    assert_eq!(lib_name(by_name("DistilGPT2")), "C_5");
    assert_eq!(lib_name(by_name("Wav2Vec2-base")), "C_4");
    // The detection R-CNN lands on the PEANUT library.
    assert_eq!(lib_name(by_name("MaskRCNN-R50")), "C_2");
    // The modern CNN lands on the CNN library.
    assert_eq!(lib_name(by_name("ConvNeXt-T")), "C_1");
    // Second wave: dense prediction, ReLU-FFN text, dual tower.
    assert_eq!(lib_name(by_name("UNet")), "C_2");
    assert_eq!(lib_name(by_name("T5-small")), "C_3");
    assert_eq!(lib_name(by_name("CLIP-ViT-B32")), "C_3");
    for n in ["UNet", "T5-small", "CLIP-ViT-B32"] {
        assert_eq!(by_name(n).coverage, 1.0, "{n}");
    }

    // High-affinity assignments run at very high utilization.
    assert!(by_name("DistilGPT2").utilization_library > 0.9);
    assert!(by_name("MaskRCNN-R50").utilization_library > 0.9);

    // The SiLU CNN is a genuine composability gap: no library covers
    // it, and the framework reports that instead of forcing a fit.
    let eff = by_name("EfficientNet-B0");
    assert!(eff.assigned_library.is_none());
    assert_eq!(eff.coverage, 0.0);
}

#[test]
fn extended_models_covered_by_generic() {
    // The generic configuration (union of all training classes) covers
    // even the extended set - including the SiLU CNN.
    let claire = Claire::new(ClaireOptions::default());
    let train = claire.train(&zoo::training_set()).expect("train");
    for m in zoo::extended_test_set().into_iter().chain([
        zoo::unet(),
        zoo::t5_small(),
        zoo::clip_vit_b32(),
    ]) {
        assert!(train.generic.covers(&m), "{} not covered by C_g", m.name());
    }
}
