//! Equivalence suite for the parallel, memoized evaluation engine:
//! every thread count and every cache setting must produce results
//! **bit-identical** to the serial, uncached reference. Comparisons
//! go through `format!("{:?}")`, which prints `f64` exactly (Rust's
//! float Debug output round-trips), so two equal strings mean two
//! bit-equal result sets — down to NaN-free float payloads, orderings
//! and tie-breaks.

use claire::core::dse::{
    custom_config, custom_config_with_engine, sweep, sweep_with_engine, DseObjective,
};
use claire::core::{Claire, ClaireOptions, Constraints, Engine, SubsetStrategy, WeightScale};
use claire::model::zoo;
use claire::ppa::DseSpace;

/// Thread counts the suite sweeps: the serial edge case, a small
/// pool, and more workers than this container has cores.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn dse_sweep_is_bit_identical_at_any_thread_count() {
    let space = DseSpace::default();
    let cons = Constraints::default();
    for model in [zoo::resnet18(), zoo::bert_base(), zoo::peanut_rcnn()] {
        let reference = format!("{:?}", sweep(&model, &space, &cons));
        for threads in THREAD_COUNTS {
            let engine = Engine::new(threads);
            let got = format!("{:?}", sweep_with_engine(&model, &space, &cons, &engine));
            assert_eq!(
                got,
                reference,
                "{} sweep diverged at {threads} thread(s)",
                model.name()
            );
        }
    }
}

#[test]
fn dse_sweep_cache_on_equals_cache_off() {
    let space = DseSpace::default();
    let cons = Constraints::default();
    let model = zoo::vgg16();
    let off = format!(
        "{:?}",
        sweep_with_engine(&model, &space, &cons, &Engine::new(4).with_cache(false))
    );
    let on = format!(
        "{:?}",
        sweep_with_engine(&model, &space, &cons, &Engine::new(4).with_cache(true))
    );
    assert_eq!(on, off, "memo cache changed sweep results");
}

#[test]
fn custom_config_selection_is_thread_count_independent() {
    let space = DseSpace::default();
    let cons = Constraints::default();
    let model = zoo::swin_t();
    let reference = format!("{:?}", custom_config(&model, &space, &cons).unwrap());
    for threads in THREAD_COUNTS {
        for cache in [false, true] {
            let engine = Engine::new(threads).with_cache(cache);
            let got = format!(
                "{:?}",
                custom_config_with_engine(&model, &space, &cons, DseObjective::MinArea, &engine)
                    .unwrap()
            );
            assert_eq!(
                got, reference,
                "selection diverged at {threads} thread(s), cache {cache}"
            );
        }
    }
}

#[test]
fn full_training_flow_is_bit_identical_across_engines() {
    let claire = Claire::new(ClaireOptions::default());
    let models = [
        zoo::resnet18(),
        zoo::alexnet(),
        zoo::bert_base(),
        zoo::vgg16(),
    ];
    let reference = format!(
        "{:?}",
        claire
            .train_with_engine(&models, &Engine::serial().with_cache(false))
            .unwrap()
    );
    for threads in THREAD_COUNTS {
        for cache in [false, true] {
            let engine = Engine::new(threads).with_cache(cache);
            let got = format!("{:?}", claire.train_with_engine(&models, &engine).unwrap());
            assert_eq!(
                got, reference,
                "training flow diverged at {threads} thread(s), cache {cache}"
            );
        }
    }
}

#[test]
fn library_synthesis_is_bit_identical_across_engines() {
    // Parallel library synthesis: the subset fan-out (one `C_k`
    // configuration per WeightedJaccard subset, clustered through the
    // engine's graph and Louvain memo tiers) must not change any
    // output bit. The training set is chosen so agglomeration forms
    // several multi-member subsets — compact CNNs, attention
    // transformers, and the Conv1d-bearing GPT-2 — exercising the
    // merged-vector maintenance and the per-subset par_map.
    let claire = Claire::new(ClaireOptions {
        subsets: SubsetStrategy::WeightedJaccard {
            threshold: 0.6,
            scale: WeightScale::Log,
        },
        ..ClaireOptions::default()
    });
    let models = [
        zoo::resnet18(),
        zoo::resnet50(),
        zoo::mobilenet_v2(),
        zoo::bert_base(),
        zoo::vit_base(),
        zoo::gpt2(),
    ];
    let reference = format!(
        "{:?}",
        claire
            .train_with_engine(&models, &Engine::serial().with_cache(false))
            .unwrap()
    );
    for threads in THREAD_COUNTS {
        for cache in [false, true] {
            let engine = Engine::new(threads).with_cache(cache);
            let got = format!("{:?}", claire.train_with_engine(&models, &engine).unwrap());
            assert_eq!(
                got, reference,
                "library synthesis diverged at {threads} thread(s), cache {cache}"
            );
        }
    }
}

#[test]
fn clustering_memo_tiers_see_traffic_during_training() {
    let engine = Engine::new(2);
    let claire = Claire::new(ClaireOptions::default());
    claire
        .train_with_engine(&[zoo::resnet18(), zoo::alexnet()], &engine)
        .unwrap();
    let stats = engine.stats();
    assert!(
        stats.graph_misses > 0,
        "graph cache untouched by training: {stats:?}"
    );
    assert!(
        stats.louvain_hits + stats.louvain_misses > 0,
        "louvain cache untouched by training: {stats:?}"
    );
    for stage in ["customs", "generic", "subsets", "libraries", "algo_ppa"] {
        assert!(
            stats.stages.iter().any(|(name, _)| name == stage),
            "stage {stage} not timed: {stats:?}"
        );
    }
}

#[test]
fn test_phase_is_bit_identical_across_engines() {
    let claire = Claire::new(ClaireOptions::default());
    let training = [
        zoo::resnet18(),
        zoo::alexnet(),
        zoo::bert_base(),
        zoo::vgg16(),
    ];
    let tests = [zoo::resnet50(), zoo::vit_base()];
    let serial = Engine::serial().with_cache(false);
    let train = claire.train_with_engine(&training, &serial).unwrap();
    let reference = format!(
        "{:?}",
        claire
            .evaluate_test_with_engine(&train, &tests, &serial)
            .unwrap()
    );
    for threads in THREAD_COUNTS {
        let engine = Engine::new(threads);
        let got = format!(
            "{:?}",
            claire
                .evaluate_test_with_engine(&train, &tests, &engine)
                .unwrap()
        );
        assert_eq!(got, reference, "test phase diverged at {threads} thread(s)");
    }
}

#[test]
fn staged_sweep_is_bit_identical_to_exhaustive_everywhere() {
    // The staged screens (area + latency lower bound) must be
    // deterministic and selection-preserving: at every thread count,
    // cache on or off, the screened sweep output is Debug-string
    // identical to the serial screened reference, an order-preserving
    // subset of the exhaustive oracle whose removals all sit outside
    // the latency-slack window, and every objective's selection from
    // either list is bit-identical.
    let space = DseSpace::default();
    let cons = Constraints::default();
    for model in [zoo::vgg16(), zoo::bert_base()] {
        let oracle = sweep_with_engine(
            &model,
            &space,
            &cons,
            &Engine::serial().with_cache(false).with_pruning(false),
        );
        let oracle_ref = format!("{oracle:?}");
        let staged_ref = format!(
            "{:?}",
            sweep_with_engine(
                &model,
                &space,
                &cons,
                &Engine::serial().with_cache(false).with_pruning(true)
            )
        );
        for threads in THREAD_COUNTS {
            for cache in [false, true] {
                for pruning in [false, true] {
                    let engine = Engine::new(threads).with_cache(cache).with_pruning(pruning);
                    let got = format!("{:?}", sweep_with_engine(&model, &space, &cons, &engine));
                    let want = if pruning { &staged_ref } else { &oracle_ref };
                    assert_eq!(
                        &got,
                        want,
                        "{} sweep diverged at {threads} thread(s), cache {cache}, \
                         pruning {pruning}",
                        model.name()
                    );
                }
            }
        }
        // Screened ⊆ oracle, order preserved, removals out of window.
        let staged = sweep_with_engine(&model, &space, &cons, &Engine::serial());
        let oracle_dbg: Vec<String> = oracle.iter().map(|p| format!("{p:?}")).collect();
        let mut cursor = 0usize;
        for p in &staged {
            let needle = format!("{p:?}");
            let pos = oracle_dbg[cursor..]
                .iter()
                .position(|e| *e == needle)
                .unwrap_or_else(|| panic!("staged point {} missing from oracle", p.hw));
            cursor += pos + 1;
        }
        let best_latency = oracle
            .iter()
            .map(|p| p.report.latency_s)
            .fold(f64::INFINITY, f64::min);
        let limit = best_latency * (1.0 + cons.latency_slack);
        let staged_set: std::collections::BTreeSet<String> =
            staged.iter().map(|p| format!("{p:?}")).collect();
        for p in &oracle {
            if !staged_set.contains(&format!("{p:?}")) {
                assert!(
                    p.report.latency_s > limit,
                    "{} pruned but inside the latency window",
                    p.hw
                );
            }
        }
        for objective in DseObjective::ALL {
            let a = format!(
                "{:?}",
                custom_config_with_engine(&model, &space, &cons, objective, &Engine::serial())
                    .unwrap()
            );
            let b = format!(
                "{:?}",
                custom_config_with_engine(
                    &model,
                    &space,
                    &cons,
                    objective,
                    &Engine::serial().with_pruning(false)
                )
                .unwrap()
            );
            assert_eq!(a, b, "{} {objective:?} selection diverged", model.name());
        }
    }
}

#[test]
fn staged_selection_is_bit_identical_to_exhaustive() {
    let space = DseSpace::default();
    let cons = Constraints::default();
    let model = zoo::swin_t();
    for objective in [
        DseObjective::MinArea,
        DseObjective::MinLatency,
        DseObjective::MinEnergyDelayProduct,
    ] {
        let reference = format!(
            "{:?}",
            custom_config_with_engine(
                &model,
                &space,
                &cons,
                objective,
                &Engine::serial().with_pruning(false)
            )
            .unwrap()
        );
        for threads in THREAD_COUNTS {
            let engine = Engine::new(threads);
            let got = format!(
                "{:?}",
                custom_config_with_engine(&model, &space, &cons, objective, &engine).unwrap()
            );
            assert_eq!(
                got, reference,
                "staged {objective:?} selection diverged at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn area_tier_and_structural_keys_see_traffic() {
    let space = DseSpace::default();
    let cons = Constraints::default();
    for threads in THREAD_COUNTS {
        let engine = Engine::new(threads);
        // Two *independent* constructions of the same architecture:
        // distinct instance ids, identical layer content.
        let first = zoo::resnet18();
        let second = zoo::resnet18();
        sweep_with_engine(&first, &space, &cons, &engine);
        let cold = engine.stats();
        assert!(
            cold.area_hits + cold.area_misses > 0,
            "area tables untouched by a staged sweep: {cold:?}"
        );
        assert_eq!(cold.struct_entries, 1, "one architecture interned");
        sweep_with_engine(&second, &space, &cons, &engine);
        let warm = engine.stats();
        assert_eq!(
            warm.struct_entries, 1,
            "structurally identical model must not add an interner entry"
        );
        assert_eq!(
            warm.struct_instances, 2,
            "both instances mapped onto the shared structure"
        );
        assert_eq!(
            warm.sum_misses, cold.sum_misses,
            "structural keys must serve the second instance's sums from cache \
             ({threads} thread(s))"
        );
        assert!(
            warm.sum_hits > cold.sum_hits,
            "second sweep produced no compute-sum hits: {warm:?}"
        );
    }
}

#[test]
fn cache_off_engine_interns_nothing() {
    let engine = Engine::new(2).with_cache(false);
    sweep_with_engine(
        &zoo::resnet18(),
        &DseSpace::default(),
        &Constraints::default(),
        &engine,
    );
    let stats = engine.stats();
    assert_eq!(stats.struct_entries, 0);
    assert_eq!(stats.struct_instances, 0);
    assert_eq!(stats.area_hits + stats.area_misses, 0);
    assert_eq!(stats.area_entries, 0);
}

#[test]
fn engine_counters_see_traffic_during_a_sweep() {
    let engine = Engine::new(2);
    let model = zoo::resnet18();
    sweep_with_engine(
        &model,
        &DseSpace::default(),
        &Constraints::default(),
        &engine,
    );
    let stats = engine.stats();
    assert!(
        stats.sum_misses > 0,
        "compute-sum cache untouched by a sweep: {stats:?}"
    );
    assert!(
        stats.route_hits + stats.route_misses > 0,
        "route cache untouched by a sweep: {stats:?}"
    );
    assert!(stats.overall_hit_rate() > 0.0, "no memo hits: {stats:?}");
}
