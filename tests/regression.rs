//! Numeric regression snapshots: exact values of the headline metrics
//! under the paper-pinned partition, so that any drift in the PPA
//! constants, graph construction, clustering or cost model is caught
//! immediately (loosened only deliberately, alongside an
//! EXPERIMENTS.md update).

use claire::core::{paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy};
use claire::model::zoo;

fn close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: expected {expected}, got {actual}"
    );
}

#[test]
fn headline_numbers_snapshot() {
    let claire = Claire::new(ClaireOptions {
        subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
        ..ClaireOptions::default()
    });
    let train = claire.train(&zoo::training_set()).expect("train");
    let test = claire
        .evaluate_test(&train, &zoo::test_set())
        .expect("test");

    // Library NRE (normalised to C_g). Paper: 0.5 / 0.25.
    close(train.libraries[0].nre_normalized, 0.499, 0.01, "NRE C_1");
    close(train.libraries[2].nre_normalized, 0.668, 0.01, "NRE C_3");
    close(train.libraries[4].nre_normalized, 0.277, 0.01, "NRE C_5");

    // Cumulative customs. Paper: 2.998 (C_1), 0.999 (C_3).
    close(
        train.libraries[0].cumulative_custom_nre,
        2.677,
        0.03,
        "NRE_cstm C_1",
    );
    close(
        train.libraries[2].cumulative_custom_nre,
        2.015,
        0.03,
        "NRE_cstm C_3",
    );

    // Generic configuration structure.
    assert_eq!(train.generic.chiplet_count(), 3);
    close(train.generic.area_mm2(), 115.1, 1.0, "generic area");

    // Chiplet counts per library: C_1..C_5.
    let counts: Vec<usize> = train
        .libraries
        .iter()
        .map(|l| l.config.chiplet_count())
        .collect();
    assert_eq!(counts, vec![2, 2, 2, 1, 1]);

    // Test-phase utilizations (Table V analogue).
    let by_name = |n: &str| {
        test.reports
            .iter()
            .find(|r| r.model_name == n)
            .unwrap_or_else(|| panic!("{n} missing"))
    };
    close(
        by_name("Alexnet").utilization_library,
        0.500,
        1e-9,
        "U Alexnet",
    );
    close(
        by_name("Alexnet").utilization_generic,
        1.0 / 3.0,
        1e-9,
        "U_g Alexnet",
    );
    close(
        by_name("BERT-base").utilization_generic,
        0.200,
        1e-9,
        "U_g BERT",
    );
    close(
        by_name("Graphormer").utilization_generic,
        2.0 / 15.0,
        1e-9,
        "U_g Graphormer",
    );

    // Test NRE rows: C_4 (BERT + Graphormer) benefit ≈ 2.01x.
    let c4 = test
        .nre_rows
        .iter()
        .find(|(k, ..)| *k == 3)
        .expect("C_4 row");
    close(c4.2 / c4.3, 2.01, 0.02, "C_4 test benefit");
}

#[test]
fn edge_histogram_snapshot() {
    let hist = claire::core::graphs::edge_histogram(&zoo::training_set());
    // LINEAR-LINEAR count is a direct function of the zoo definitions.
    assert_eq!(hist[0].1, 1566, "LINEAR-LINEAR count drifted");
    assert!(hist[0].1 > 3 * hist[1].1 / 2, "dominance margin");
}

#[test]
fn layer_inventory_goldens() {
    // Exact extracted-layer counts per class for the anchor models:
    // drift means the zoo's architecture reconstruction changed.
    use claire::model::{ActivationKind, OpClass, PoolingKind};
    let count = |name: &str, class: OpClass| {
        zoo::by_name(name)
            .expect(name)
            .op_class_counts()
            .get(&class)
            .copied()
            .unwrap_or(0)
    };
    // ResNet-18: 16 block convs + stem + 3 downsamples.
    assert_eq!(count("Resnet18", OpClass::Conv2d), 20);
    assert_eq!(count("Resnet18", OpClass::Pooling(PoolingKind::MaxPool)), 1);
    assert_eq!(count("Resnet18", OpClass::Linear), 1);
    // VGG-16: 13 convs, 3 FCs, 5 maxpools.
    assert_eq!(count("VGG16", OpClass::Conv2d), 13);
    assert_eq!(count("VGG16", OpClass::Linear), 3);
    assert_eq!(count("VGG16", OpClass::Pooling(PoolingKind::MaxPool)), 5);
    // BERT-base: 6 linears x 12 blocks + pooler.
    assert_eq!(count("BERT-base", OpClass::Linear), 73);
    assert_eq!(
        count("BERT-base", OpClass::Activation(ActivationKind::Tanh)),
        1
    );
    // GPT-2: 4 Conv1D x 12 blocks.
    assert_eq!(count("GPT2", OpClass::Conv1d), 48);
    // Mixtral: (4 attn + 1 router + 8x3 expert) x 32 + lm_head.
    assert_eq!(count("Mixtral-8x7B", OpClass::Linear), 32 * 29 + 1);
}

#[test]
fn macs_snapshot_for_known_models() {
    // Published single-inference MAC counts (within modelling slack).
    let cases: &[(&str, f64, f64)] = &[
        // (name, expected GMACs, relative tolerance)
        ("Resnet18", 1.82, 0.05),
        ("Resnet50", 4.11, 0.05),
        ("VGG16", 15.47, 0.03),
        ("Densenet121", 2.87, 0.08),
        ("Mobilenetv2", 0.31, 0.10),
        ("Alexnet", 0.71, 0.05),
    ];
    for &(name, want, tol) in cases {
        let m = zoo::by_name(name).expect(name);
        let got = m.macs() as f64 / 1e9;
        assert!(
            (got - want).abs() / want <= tol,
            "{name}: {got:.3} GMACs vs published {want:.3}"
        );
    }
}
