//! Stress tests over synthetic workloads: the framework must handle
//! arbitrary shape-consistent models, not just the 24 built-ins.

use claire::core::{Claire, ClaireOptions};
use claire::model::synth::{random_model, random_suite, Family};

#[test]
fn full_flow_on_synthetic_suite() {
    let claire = Claire::new(ClaireOptions::default());
    let training = random_suite(2024, 9);
    let out = claire.train(&training).expect("synthetic training");
    assert_eq!(out.customs.len(), 9);
    for (i, m) in training.iter().enumerate() {
        assert!(out.generic.covers(m), "{} uncovered", m.name());
        let lib = out.library_of(i).expect("assigned");
        assert!(out.libraries[lib].config.covers(m));
    }
    // Deploy more synthetic models as a test set.
    let tests = random_suite(7_777, 6);
    let t = claire.evaluate_test(&out, &tests).expect("synthetic test");
    for r in &t.reports {
        if r.assigned_library.is_some() {
            assert_eq!(r.coverage, 1.0, "{}", r.model_name);
            assert!(r.utilization_library > 0.0);
        }
    }
}

#[test]
fn custom_configs_for_every_family() {
    let claire = Claire::new(ClaireOptions::default());
    for family in [Family::Cnn, Family::Transformer, Family::Audio] {
        for seed in 0..8 {
            let m = random_model(seed, family);
            let custom = claire
                .custom_for(&m)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert!(custom.report.area_mm2 <= 100.0 + 1e-9);
            assert!(custom.config.covers(&m));
        }
    }
}

#[test]
fn forty_model_fleet_trains_quickly() {
    let claire = Claire::new(ClaireOptions::default());
    let models = random_suite(555, 40);
    let start = std::time::Instant::now();
    let out = claire.train(&models).expect("large synthetic training");
    assert_eq!(out.customs.len(), 40);
    assert!(out.libraries.len() >= 2);
    // The paper's flow took 8 minutes for 13 algorithms; this
    // implementation should stay well under half a minute for 40 even
    // in debug builds.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "took {:?}",
        start.elapsed()
    );
}

#[test]
fn training_is_deterministic() {
    let claire = Claire::new(ClaireOptions::default());
    let models = random_suite(31, 5);
    let a = claire.train(&models).expect("train a");
    let b = claire.train(&models).expect("train b");
    assert_eq!(a.generic.chiplets, b.generic.chiplets);
    assert_eq!(a.libraries.len(), b.libraries.len());
    for (x, y) in a.libraries.iter().zip(&b.libraries) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.nre_normalized, y.nre_normalized);
    }
}
