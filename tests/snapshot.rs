//! Warm-state snapshot suite: the serialized memo tiers must be a
//! pure accelerant. A flow resumed from a snapshot is bit-identical
//! to a cold flow, the snapshot bytes are canonical (independent of
//! thread count and evaluation order), and every corruption mode is
//! rejected with a typed error that degrades to a cold start —
//! never a panic, never a poisoned engine.

use claire::core::{Claire, ClaireError, ClaireOptions, Engine};
use claire::model::zoo;
use proptest::prelude::*;
use std::path::PathBuf;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("claire-snap-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn flow_from_snapshot_is_bit_identical_to_cold() {
    let dir = scratch("flow");
    let claire = Claire::new(ClaireOptions::default());
    let training = [zoo::resnet18(), zoo::alexnet()];
    let tests = [zoo::vgg16()];

    let cold = Engine::new(2);
    let cold_train = claire
        .train_with_engine(&training, &cold)
        .expect("cold train");
    let cold_test = claire
        .evaluate_test_with_engine(&cold_train, &tests, &cold)
        .expect("cold test");
    let reference = format!("{cold_train:?}\n{cold_test:?}");

    let path = dir.join("claire.snapshot");
    assert!(cold.save_snapshot(&path).expect("save"), "nothing saved");

    let warm = Engine::new(2);
    assert!(warm.load_snapshot(&path).expect("load"), "nothing loaded");
    let warm_train = claire
        .train_with_engine(&training, &warm)
        .expect("warm train");
    let warm_test = claire
        .evaluate_test_with_engine(&warm_train, &tests, &warm)
        .expect("warm test");
    assert_eq!(
        format!("{warm_train:?}\n{warm_test:?}"),
        reference,
        "flow from snapshot diverged from the cold flow"
    );

    // The warm flow re-derives nothing the snapshot carried: every
    // Louvain clustering and compute sum is a restored-tier hit.
    let stats = warm.stats();
    assert_eq!(stats.louvain_misses, 0, "{stats:?}");
    assert_eq!(stats.sum_misses, 0, "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_bytes_are_identical_across_thread_counts() {
    let claire = Claire::new(ClaireOptions::default());
    let training = [zoo::resnet18(), zoo::gpt2()];
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(threads);
        claire.train_with_engine(&training, &engine).expect("train");
        snapshots.push((threads, engine.snapshot_bytes().expect("encode")));
    }
    let (_, reference) = &snapshots[0];
    for (threads, bytes) in &snapshots[1..] {
        assert_eq!(
            bytes, reference,
            "snapshot bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn corruption_is_typed_and_degrades_to_cold_start() {
    let dir = scratch("corrupt");
    let claire = Claire::new(ClaireOptions {
        cache_dir: Some(dir.clone()),
        ..ClaireOptions::default()
    });
    let model = zoo::alexnet();

    let cold = Engine::new(2);
    let reference = claire
        .custom_for_with_engine(&model, &cold)
        .expect("cold custom");
    assert!(claire.save_warm_state(&cold).expect("save"));
    let path = claire.snapshot_path().expect("cache dir set");
    let valid = std::fs::read(&path).expect("snapshot bytes");

    // Every corruption mode: (tag, mutated bytes, detail substring).
    let mut truncated = valid.clone();
    truncated.truncate(17);
    let mut bad_magic = valid.clone();
    bad_magic[0] ^= 0xFF;
    let mut foreign_endian = valid.clone();
    foreign_endian.swap(8, 9); // byte-swapped BOM
    let mut bad_version = valid.clone();
    bad_version[10] = bad_version[10].wrapping_add(1);
    let mut bad_checksum = valid.clone();
    *bad_checksum.last_mut().expect("non-empty") ^= 0x01;
    let cases = [
        ("truncated", truncated, "short"),
        ("magic", bad_magic, "magic"),
        ("endianness", foreign_endian, "endian"),
        ("version", bad_version, "version"),
        ("checksum", bad_checksum, "checksum"),
    ];

    for (tag, bytes, detail) in cases {
        std::fs::write(&path, &bytes).expect("write corrupt");
        let engine = Engine::new(2);
        let err = claire.load_warm_state(&engine).expect_err(tag);
        match &err {
            ClaireError::SnapshotInvalid { detail: d } => {
                assert!(d.contains(detail), "{tag}: unexpected detail {d:?}");
            }
            other => panic!("{tag}: expected SnapshotInvalid, got {other:?}"),
        }
        // The rejected load left the engine untouched: the cold run
        // still works and matches the reference bit for bit.
        let recovered = claire
            .custom_for_with_engine(&model, &engine)
            .unwrap_or_else(|e| panic!("{tag}: engine unusable after rejected load: {e}"));
        assert_eq!(
            format!("{recovered:?}"),
            format!("{reference:?}"),
            "{tag}: cold fallback diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_never_tear_the_snapshot() {
    // Two engines with *different* warm contents race saves to one
    // path. Unique temp names mean every rename publishes a complete
    // file, so whichever writer lands last, the path always holds one
    // of the two valid snapshots — never an interleaving.
    let dir = scratch("race");
    let path = dir.join("claire.snapshot");
    let claire = Claire::new(ClaireOptions::default());

    let warm = |model: claire::model::Model| {
        let engine = Engine::new(2);
        claire
            .custom_for_with_engine(&model, &engine)
            .expect("warm custom");
        engine
    };
    let a = warm(zoo::alexnet());
    let b = warm(zoo::resnet18());
    let valid = [
        a.snapshot_bytes().expect("encode a"),
        b.snapshot_bytes().expect("encode b"),
    ];

    const ROUNDS: usize = 24;
    std::thread::scope(|s| {
        for engine in [&a, &b] {
            let path = &path;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    assert!(engine.save_snapshot(path).expect("racing save"));
                }
            });
        }
    });

    let on_disk = std::fs::read(&path).expect("snapshot exists");
    assert!(
        valid.contains(&on_disk),
        "path holds bytes that match neither writer: torn file"
    );
    let restored = Engine::new(2);
    assert!(restored.load_snapshot(&path).expect("post-race load"));
    assert!(
        std::fs::read_dir(&dir)
            .expect("scratch dir")
            .filter_map(Result::ok)
            .all(|e| !e.file_name().to_string_lossy().contains("tmp")),
        "temp files were left behind"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_snapshot_is_a_quiet_cold_start() {
    let dir = scratch("missing");
    let claire = Claire::new(ClaireOptions {
        cache_dir: Some(dir.join("never-written")),
        ..ClaireOptions::default()
    });
    let engine = Engine::new(1);
    assert!(!claire
        .load_warm_state(&engine)
        .expect("missing is not an error"));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Round-tripping is idempotent and canonical: an engine warmed
    /// by any subset of workloads in any order produces the same
    /// bytes as an engine restored from its own snapshot, and the
    /// same bytes as a second engine warmed in a different order.
    #[test]
    fn snapshot_round_trip_is_canonical(
        order in proptest::collection::vec(0usize..4, 1..4),
        threads in 1usize..4,
    ) {
        let pool = [zoo::alexnet(), zoo::resnet18(), zoo::vgg16(), zoo::gpt2()];
        let claire = Claire::new(ClaireOptions::default());

        let warm = |indices: &[usize], threads: usize| {
            let engine = Engine::new(threads);
            for &i in indices {
                claire
                    .custom_for_with_engine(&pool[i], &engine)
                    .expect("custom");
            }
            engine
        };

        let a = warm(&order, threads);
        let bytes_a = a.snapshot_bytes().expect("encode a");

        // Restore into a fresh engine: the re-encoded bytes match.
        let dir = scratch("prop");
        let path = dir.join("claire.snapshot");
        std::fs::write(&path, &bytes_a).expect("write");
        let restored = Engine::new(threads);
        prop_assert!(restored.load_snapshot(&path).expect("load"));
        prop_assert_eq!(&restored.snapshot_bytes().expect("encode restored"), &bytes_a);

        // A different evaluation order (and thread count) over the
        // same workload set reaches the same canonical bytes.
        let reversed: Vec<usize> = order.iter().rev().copied().collect();
        let b = warm(&reversed, 4usize.saturating_sub(threads).max(1));
        prop_assert_eq!(&b.snapshot_bytes().expect("encode b"), &bytes_a);
        std::fs::remove_dir_all(&dir).ok();
    }
}
