//! The fault-injection harness: every fault class, at 1, 2 and 8
//! worker threads, must end in a typed [`ClaireError`] or a
//! degradation-flagged-but-finite result — never a panic and never a
//! non-finite number escaping into a report. A zero-rate plan must be
//! bit-identical to running with no plan at all.
//!
//! Injected worker panics print the default panic-hook backtrace to
//! stderr while being contained; noisy output from this suite is
//! expected and harmless.

use claire::core::{
    Claire, ClaireError, ClaireOptions, Engine, FaultClass, FaultPlan, PpaReport, RobustnessPolicy,
};
use claire::model::zoo;

/// The serial edge case, a small pool, and more workers than cores.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_finite(report: &PpaReport) {
    assert!(report.latency_s.is_finite(), "latency {report:?}");
    assert!(report.energy_j.is_finite(), "energy {report:?}");
    assert!(report.area_mm2.is_finite(), "area {report:?}");
    assert!(report.nop_energy_j.is_finite(), "nop {report:?}");
    assert!(report.noc_energy_j.is_finite(), "noc {report:?}");
}

/// Runs `custom_for` for Alexnet on an engine armed with `class` at
/// `rate`, returning the outcome plus the injection count.
fn faulted_custom(
    class: FaultClass,
    rate: f64,
    threads: usize,
    policy: RobustnessPolicy,
) -> (Result<claire::core::CustomResult, ClaireError>, u64) {
    let plan = FaultPlan::new(0xFA11).with(class, rate);
    let engine = Engine::new(threads).with_faults(plan);
    let claire = Claire::new(ClaireOptions {
        policy,
        ..ClaireOptions::default()
    });
    let out = claire.custom_for_with_engine(&zoo::alexnet(), &engine);
    let injected = engine.faults().map(|p| p.injections(class)).unwrap_or(0);
    (out, injected)
}

#[test]
fn nan_ppa_surfaces_as_typed_error_never_a_panic() {
    for threads in THREAD_COUNTS {
        let (out, injected) =
            faulted_custom(FaultClass::NanPpa, 1.0, threads, RobustnessPolicy::FailFast);
        assert!(injected > 0, "rate-1.0 NaN plan never fired");
        let err = out.expect_err("NaN energies must not produce a result");
        assert!(
            matches!(
                err,
                ClaireError::NonFiniteMetric { .. } | ClaireError::NoFeasibleConfiguration { .. }
            ),
            "{threads} threads: unexpected error {err}"
        );
    }
}

#[test]
fn inf_ppa_surfaces_as_typed_error_never_a_panic() {
    for threads in THREAD_COUNTS {
        let (out, injected) =
            faulted_custom(FaultClass::InfPpa, 1.0, threads, RobustnessPolicy::FailFast);
        assert!(injected > 0);
        let err = out.expect_err("Inf energies must not produce a result");
        assert!(
            matches!(
                err,
                ClaireError::NonFiniteMetric { .. } | ClaireError::NoFeasibleConfiguration { .. }
            ),
            "{threads} threads: unexpected error {err}"
        );
    }
}

#[test]
fn perturbed_ppa_stays_finite_and_deterministic() {
    let mut outcomes = Vec::new();
    for threads in THREAD_COUNTS {
        let (out, injected) = faulted_custom(
            FaultClass::PerturbPpa,
            1.0,
            threads,
            RobustnessPolicy::FailFast,
        );
        assert!(injected > 0);
        let custom = out.expect("finite drift flows through normally");
        assert_finite(&custom.report);
        assert!(custom.degradation.is_none(), "drift is not degradation");
        outcomes.push(format!("{:?}", custom.report));
    }
    // The same seed must produce the same drifted report at every
    // thread count: injection decisions are per-site, not per-worker.
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[1], outcomes[2]);
}

#[test]
fn dropped_coverage_surfaces_as_typed_error() {
    for threads in THREAD_COUNTS {
        let (out, injected) = faulted_custom(
            FaultClass::DropCoverage,
            1.0,
            threads,
            RobustnessPolicy::FailFast,
        );
        assert!(injected > 0);
        let err = out.expect_err("dropped coverage must not produce a result");
        assert!(
            matches!(
                err,
                ClaireError::IncompleteCoverage { .. }
                    | ClaireError::NoFeasibleConfiguration { .. }
            ),
            "{threads} threads: unexpected error {err}"
        );
    }
}

#[test]
fn worker_panics_are_contained_as_typed_errors() {
    let models = [zoo::alexnet(), zoo::resnet18()];
    for threads in THREAD_COUNTS {
        let plan = FaultPlan::new(7).with(FaultClass::WorkerPanic, 1.0);
        let engine = Engine::new(threads).with_faults(plan);
        let claire = Claire::new(ClaireOptions::default());
        let err = claire
            .train_with_engine(&models, &engine)
            .expect_err("panicking workers must not produce a result");
        assert!(
            matches!(err, ClaireError::WorkerPanic { .. }),
            "{threads} threads: unexpected error {err}"
        );
        let injected = engine
            .faults()
            .map(|p| p.injections(FaultClass::WorkerPanic))
            .unwrap_or(0);
        assert!(injected > 0);
    }
}

#[test]
fn poisoned_cache_shards_recover_bit_identically() {
    for threads in THREAD_COUNTS {
        let plain = Engine::new(threads);
        let baseline = Claire::new(ClaireOptions::default())
            .custom_for_with_engine(&zoo::alexnet(), &plain)
            .expect("baseline");

        let (out, injected) = faulted_custom(
            FaultClass::PoisonShard,
            1.0,
            threads,
            RobustnessPolicy::FailFast,
        );
        assert!(injected > 0, "every shard should be poisoned");
        let poisoned = out.expect("poisoned memo shards are recoverable");
        assert_finite(&poisoned.report);
        // Poisoning never corrupts stored values, so recovery is
        // exact, not merely approximate.
        assert_eq!(
            format!("{:?}", poisoned.report),
            format!("{:?}", baseline.report),
            "{threads} threads"
        );
    }
}

#[test]
fn injected_infeasibility_fails_fast_or_degrades_by_policy() {
    for threads in THREAD_COUNTS {
        let (out, injected) = faulted_custom(
            FaultClass::InfeasibleConstraints,
            1.0,
            threads,
            RobustnessPolicy::FailFast,
        );
        assert!(injected > 0);
        let err = out.expect_err("unsatisfiable constraints must fail fast");
        assert!(
            matches!(
                err,
                ClaireError::NoFeasibleConfiguration { .. }
                    | ClaireError::ChipletAreaUnsatisfiable { .. }
            ),
            "{threads} threads: unexpected error {err}"
        );

        let (out, _) = faulted_custom(
            FaultClass::InfeasibleConstraints,
            1.0,
            threads,
            RobustnessPolicy::Degrade,
        );
        let rescued = out.expect("degrade mode walks the relaxation ladder");
        assert_finite(&rescued.report);
        let degradation = rescued.degradation.expect("relaxation must be flagged");
        assert!(!degradation.steps.is_empty());
    }
}

#[test]
fn failed_noc_links_route_around_or_error_typed() {
    for threads in THREAD_COUNTS {
        // Moderate rate: some links die, the torus routes around them.
        let (out, _) = faulted_custom(
            FaultClass::FailedNocLink,
            0.3,
            threads,
            RobustnessPolicy::FailFast,
        );
        match out {
            Ok(custom) => assert_finite(&custom.report),
            Err(e) => assert!(
                matches!(
                    e,
                    ClaireError::NoRoute { .. } | ClaireError::NoFeasibleConfiguration { .. }
                ),
                "{threads} threads: unexpected error {e}"
            ),
        }

        // Every link dead: small tori (1-2 units per direction) have
        // no alternative path left, so a typed NoRoute (or an
        // infeasible sweep) is the only acceptable failure.
        let (out, injected) = faulted_custom(
            FaultClass::FailedNocLink,
            1.0,
            threads,
            RobustnessPolicy::FailFast,
        );
        assert!(injected > 0);
        match out {
            Ok(custom) => assert_finite(&custom.report),
            Err(e) => assert!(
                matches!(
                    e,
                    ClaireError::NoRoute { .. } | ClaireError::NoFeasibleConfiguration { .. }
                ),
                "{threads} threads: unexpected error {e}"
            ),
        }
    }
}

#[test]
fn zero_rate_plan_is_bit_identical_to_no_plan() {
    let models = [zoo::alexnet(), zoo::resnet18()];
    let claire = Claire::new(ClaireOptions::default());
    for threads in THREAD_COUNTS {
        let plain = Engine::new(threads);
        let reference = format!("{:?}", claire.train_with_engine(&models, &plain));

        // Armed with *nothing*: all hooks present, no decisions fire.
        let idle = Engine::new(threads).with_faults(FaultPlan::new(0xFA11));
        let got = format!("{:?}", claire.train_with_engine(&models, &idle));
        assert_eq!(reference, got, "{threads} threads");
        assert_eq!(
            idle.faults().map(|p| p.total_injections()),
            Some(0),
            "zero-rate plan must never inject"
        );
    }
}
