//! Property-based tests over the core data structures and invariants:
//! weighted Jaccard, Louvain partitions, graph merging, the
//! `print(model)` parser round-trip, DSE feasibility, the metrics'
//! ranges, and the cost/NoC models.

use claire::core::{
    edge_cost_sequence, metrics, route_of, transfer_on_route, Claire, ClaireOptions, Constraints,
    DesignConfig, RouteTable, TransferCost,
};
use claire::cost::{NreModel, RecurringModel};
use claire::graph::{
    louvain, louvain_csr_certified, louvain_csr_passes, louvain_csr_passes_certified,
    louvain_passes, louvain_passes_reference, louvain_reference, modularity, weighted_jaccard,
    weighted_jaccard_matrix, CsrGraph, Partition, WeightedGraph,
};
use claire::model::parse::{parse_model, to_torch_print, InputShape, ParseOptions};
use claire::model::{
    Activation, ActivationKind, Conv2d, LayerKind, Linear, Model, ModelBuilder, ModelClass,
    Pooling, PoolingKind,
};
use claire::noc::{Network, Torus2d};
use claire::ppa::{layer_cost, unit_area_mm2, DseSpace, HwParams};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------- strategies ----------

fn weight_vec() -> impl Strategy<Value = BTreeMap<u8, f64>> {
    proptest::collection::btree_map(0u8..12, 0.0f64..1e9, 0..10)
}

fn small_graph() -> impl Strategy<Value = WeightedGraph<u8>> {
    proptest::collection::vec((0u8..10, 0u8..10, 0.1f64..1e6), 1..40).prop_map(|edges| {
        let mut g = WeightedGraph::new();
        for (a, b, w) in edges {
            g.add_edge(a, b, w);
        }
        g
    })
}

/// A random but shape-consistent CNN-ish model.
#[derive(Debug, Clone)]
enum Step {
    Conv { out_ch: u8, k: u8, stride: u8 },
    Act(u8),
    Pool(u8),
    Linear { out: u16 },
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (1u8..32, 1u8..5, 1u8..3).prop_map(|(out_ch, k, stride)| Step::Conv { out_ch, k, stride }),
        (0u8..5).prop_map(Step::Act),
        (0u8..3).prop_map(Step::Pool),
        (1u16..512).prop_map(|out| Step::Linear { out }),
    ];
    proptest::collection::vec(step, 1..25)
}

fn materialize(steps: &[Step]) -> Model {
    let mut b = ModelBuilder::new("random", ModelClass::Cnn);
    let mut ch: u32 = 3;
    let mut side: u32 = 64;
    let mut flat: Option<u32> = None;
    for (i, s) in steps.iter().enumerate() {
        match s {
            Step::Conv { out_ch, k, stride } if flat.is_none() => {
                let k = u32::from(*k).min(side).max(1);
                let c = Conv2d {
                    in_channels: ch,
                    out_channels: u32::from(*out_ch),
                    kernel: (k, k),
                    stride: (u32::from(*stride), u32::from(*stride)),
                    padding: (k / 2, k / 2),
                    ifm: (side, side),
                    groups: 1,
                };
                let (o, _) = c.ofm();
                if o == 0 {
                    continue;
                }
                b.push(format!("conv{i}"), LayerKind::Conv2d(c));
                ch = u32::from(*out_ch);
                side = o;
            }
            Step::Act(a) => {
                let kind = ActivationKind::ALL[usize::from(*a) % 5];
                let elements = flat
                    .map(u64::from)
                    .unwrap_or(u64::from(ch) * u64::from(side) * u64::from(side));
                b.push(
                    format!("act{i}"),
                    LayerKind::Activation(Activation { kind, elements }),
                );
            }
            Step::Pool(p) if flat.is_none() && side >= 2 => {
                let kind = PoolingKind::ALL[usize::from(*p) % 3];
                let out = side / 2;
                b.push(
                    format!("pool{i}"),
                    LayerKind::Pooling(Pooling {
                        kind,
                        input_elements: u64::from(ch) * u64::from(side) * u64::from(side),
                        output_elements: u64::from(ch) * u64::from(out) * u64::from(out),
                    }),
                );
                side = out;
            }
            Step::Linear { out } => {
                let inf = flat.unwrap_or(ch * side * side).max(1);
                b.push(
                    format!("fc{i}"),
                    LayerKind::Linear(Linear {
                        in_features: inf,
                        out_features: u32::from(*out),
                        tokens: 1,
                    }),
                );
                flat = Some(u32::from(*out));
            }
            _ => {}
        }
    }
    if b.is_empty() {
        b.push(
            "fallback",
            LayerKind::Linear(Linear {
                in_features: 64,
                out_features: 10,
                tokens: 1,
            }),
        );
    }
    b.build()
}

// ---------- weighted Jaccard ----------

proptest! {
    #[test]
    fn jaccard_in_unit_interval(a in weight_vec(), b in weight_vec()) {
        let j = weighted_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j), "{j}");
    }

    #[test]
    fn jaccard_symmetric(a in weight_vec(), b in weight_vec()) {
        prop_assert_eq!(weighted_jaccard(&a, &b), weighted_jaccard(&b, &a));
    }

    #[test]
    fn jaccard_self_is_one(a in weight_vec()) {
        prop_assert_eq!(weighted_jaccard(&a, &a), 1.0);
    }

    /// The batch similarity matrix is bit-for-bit the pairwise
    /// function: symmetric, unit diagonal, every off-diagonal entry
    /// identical (`to_bits`) to `weighted_jaccard` on the same pair.
    #[test]
    fn jaccard_matrix_matches_pairwise(vs in proptest::collection::vec(weight_vec(), 0..8)) {
        let m = weighted_jaccard_matrix(&vs);
        prop_assert_eq!(m.len(), vs.len());
        for i in 0..vs.len() {
            prop_assert_eq!(m[i][i], 1.0);
            for j in 0..vs.len() {
                prop_assert_eq!(m[i][j].to_bits(), m[j][i].to_bits());
                if i != j {
                    prop_assert_eq!(
                        m[i][j].to_bits(),
                        weighted_jaccard(&vs[i], &vs[j]).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn jaccard_scaling_down_reduces_similarity(a in weight_vec(), f in 1.5f64..100.0) {
        prop_assume!(a.values().any(|&w| w > 0.0));
        let scaled: BTreeMap<u8, f64> = a.iter().map(|(k, w)| (*k, w / f)).collect();
        let j = weighted_jaccard(&a, &scaled);
        prop_assert!((j - 1.0 / f).abs() < 1e-9, "{j} vs {}", 1.0 / f);
    }
}

// ---------- graphs and Louvain ----------

proptest! {
    #[test]
    fn louvain_partition_is_valid(g in small_graph()) {
        let p = louvain(&g, 1.0);
        let mut seen = std::collections::BTreeSet::new();
        for c in p.communities() {
            prop_assert!(!c.is_empty());
            for n in c {
                prop_assert!(seen.insert(*n), "node {n} in two communities");
                prop_assert!(g.node_weight(n).is_some());
            }
        }
        prop_assert_eq!(seen.len(), g.node_count());
    }

    #[test]
    fn louvain_at_least_matches_singletons(g in small_graph()) {
        let p = louvain(&g, 1.0);
        let singles = Partition::from_communities(
            g.nodes().map(|(n, _)| vec![*n]).collect(),
        );
        let q_louvain = modularity(&g, &p, 1.0);
        let q_single = modularity(&g, &singles, 1.0);
        prop_assert!(q_louvain >= q_single - 1e-9, "{q_louvain} < {q_single}");
    }

    /// Louvain carries no hidden state: the same graph (however its
    /// edges were inserted) and the same resolution always produce the
    /// identical community assignment, run after run.
    #[test]
    fn louvain_is_deterministic_across_runs(g in small_graph(), res in 0.25f64..4.0) {
        let first = louvain(&g, res);
        for _ in 0..3 {
            prop_assert_eq!(&louvain(&g, res), &first);
        }
        // Rebuilding the graph from its own parts (fresh insertion
        // order) changes nothing either.
        let rebuilt = WeightedGraph::from_parts(
            g.nodes().map(|(n, w)| (*n, w)).collect::<Vec<_>>(),
            g.undirected_edges().into_iter().rev().map(|((a, b), w)| (a, b, w)).collect::<Vec<_>>(),
        );
        prop_assert_eq!(&louvain(&rebuilt, res), &first);
    }

    /// Each Louvain pass only applies positive-gain local moves, so
    /// partition quality (modularity) never decreases from one pass to
    /// the next — from the initial singletons to the final partition.
    #[test]
    fn louvain_modularity_non_decreasing_across_passes(g in small_graph(), res in 0.25f64..4.0) {
        let passes = louvain_passes(&g, res);
        prop_assert!(!passes.is_empty());
        prop_assert_eq!(passes.last().unwrap(), &louvain(&g, res));
        let qs: Vec<f64> = passes.iter().map(|p| modularity(&g, p, res)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9, "modularity dropped across a pass: {qs:?}");
        }
    }

    /// The flat CSR Louvain is a drop-in replacement for the map-based
    /// reference implementation: identical partitions — not merely
    /// equal modularity — on arbitrary random weighted graphs and
    /// resolutions, pass by pass.
    #[test]
    fn csr_louvain_matches_map_reference(g in small_graph(), res in 0.25f64..4.0) {
        prop_assert_eq!(&louvain(&g, res), &louvain_reference(&g, res));
        prop_assert_eq!(&louvain_passes(&g, res), &louvain_passes_reference(&g, res));
    }

    /// Interning to CSR and back loses nothing the kernels read:
    /// re-interning the round-tripped graph reproduces the CSR arrays
    /// exactly, and community structure is unchanged.
    #[test]
    fn csr_round_trip_is_lossless(g in small_graph(), res in 0.25f64..4.0) {
        let csr = CsrGraph::from_weighted(&g);
        let rt = csr.to_weighted();
        prop_assert_eq!(&CsrGraph::from_weighted(&rt), &csr);
        prop_assert_eq!(&louvain(&rt, res), &louvain(&g, res));
    }

    #[test]
    fn merge_weights_are_additive(g1 in small_graph(), g2 in small_graph()) {
        let mut merged = g1.clone();
        merged.merge(&g2);
        for (n, w) in merged.nodes() {
            let w1 = g1.node_weight(n).unwrap_or(0.0);
            let w2 = g2.node_weight(n).unwrap_or(0.0);
            prop_assert!((w - (w1 + w2)).abs() < 1e-9);
        }
        prop_assert!(
            (merged.total_edge_weight() - g1.total_edge_weight() - g2.total_edge_weight()).abs()
                < 1e-6
        );
    }
}

// ---------- random models: parser, PPA, DSE, metrics ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_round_trips_random_models(s in steps()) {
        let model = materialize(&s);
        let text = to_torch_print(&model);
        let opts = ParseOptions {
            input: InputShape::Image { channels: 3, height: 64, width: 64 },
            class: ModelClass::Cnn,
        };
        let parsed = parse_model("random", &text, opts).expect("round trip");
        prop_assert_eq!(parsed.layer_count(), model.layer_count());
        let a: Vec<_> = parsed.op_class_counts().into_keys().collect();
        let b: Vec<_> = model.op_class_counts().into_keys().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn layer_costs_are_positive_and_monotone(s in steps()) {
        let model = materialize(&s);
        let small = HwParams::new(16, 16, 8, 8);
        let big = HwParams::new(16, 64, 32, 32);
        for layer in model.layers() {
            let cs = layer_cost(&layer.kind, &small);
            let cb = layer_cost(&layer.kind, &big);
            prop_assert!(cs.cycles > 0);
            prop_assert!(cs.energy_pj >= 0.0);
            // More hardware never increases latency; energy unchanged.
            prop_assert!(cb.cycles <= cs.cycles);
            prop_assert!((cb.energy_pj - cs.energy_pj).abs() < 1e-6);
        }
    }

    #[test]
    fn coverage_and_utilization_in_range(s in steps()) {
        let model = materialize(&s);
        let hw = HwParams::new(32, 32, 16, 16);
        let classes = model.op_class_counts().into_keys().collect();
        let cfg = DesignConfig::monolithic("c", hw, classes);
        prop_assert_eq!(metrics::algorithm_coverage(&model, &cfg), 1.0);
        let u = metrics::chiplet_utilization(&model, &cfg);
        prop_assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    #[test]
    fn custom_dse_meets_constraints(s in steps()) {
        let model = materialize(&s);
        let claire = Claire::new(ClaireOptions::default());
        let cons = Constraints::default();
        // Feasibility is guaranteed for these small models.
        let custom = claire.custom_for(&model).expect("feasible");
        prop_assert!(custom.config.covers(&model));
        prop_assert!(custom.report.area_mm2 <= cons.chiplet_area_limit_mm2 + 1.0);
        prop_assert!(
            custom.report.power_density_w_per_mm2() <= cons.power_density_limit_w_per_mm2
        );
        for ch in &custom.config.chiplets {
            prop_assert!(ch.area_mm2 <= cons.chiplet_area_limit_mm2);
        }
    }
}

// ---------- staged DSE pruning vs the exhaustive reference ----------

fn random_space() -> impl Strategy<Value = DseSpace> {
    let axis = |range: std::ops::Range<u32>| proptest::collection::vec(range, 1..3);
    (axis(4..64), axis(1..48), axis(1..48), axis(1..48)).prop_map(
        |(sa_sizes, n_sas, n_acts, n_pools)| DseSpace {
            sa_sizes,
            n_sas,
            n_acts,
            n_pools,
            threads: Some(1),
        },
    )
}

fn random_constraints() -> impl Strategy<Value = Constraints> {
    (10.0f64..300.0, 0.0f64..1.0).prop_map(|(area, slack)| Constraints {
        chiplet_area_limit_mm2: area,
        latency_slack: slack,
        ..Constraints::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The staged, screened sweep (area + latency lower bound) is
    /// selection-indistinguishable from the exhaustive reference on
    /// arbitrary models, spaces, and constraints: its output is an
    /// order-preserving subset of the exhaustive feasible set whose
    /// removals all sit outside the latency-slack window, and the
    /// selected configuration under every objective is bit-identical
    /// (Debug strings compare `f64`s exactly) — including agreement
    /// on infeasibility.
    #[test]
    fn staged_sweep_equals_exhaustive_on_random_inputs(
        s in steps(),
        space in random_space(),
        cons in random_constraints(),
    ) {
        use claire::core::dse::{custom_config_with_engine, sweep_with_engine, DseObjective};
        use claire::core::Engine;
        let model = materialize(&s);
        let staged_engine = Engine::serial();
        let exhaustive_engine = Engine::serial().with_pruning(false);
        let staged = sweep_with_engine(&model, &space, &cons, &staged_engine);
        let exhaustive = sweep_with_engine(&model, &space, &cons, &exhaustive_engine);
        // Order-preserving subset…
        let exhaustive_dbg: Vec<String> =
            exhaustive.iter().map(|p| format!("{p:?}")).collect();
        let mut cursor = 0usize;
        for p in &staged {
            let needle = format!("{p:?}");
            let pos = exhaustive_dbg[cursor..].iter().position(|e| *e == needle);
            prop_assert!(pos.is_some(), "staged point {} missing from oracle", p.hw);
            cursor += pos.unwrap() + 1;
        }
        // …with every removal outside the latency window.
        let best_latency = exhaustive
            .iter()
            .map(|p| p.report.latency_s)
            .fold(f64::INFINITY, f64::min);
        let limit = best_latency * (1.0 + cons.latency_slack);
        let staged_set: std::collections::BTreeSet<String> =
            staged.iter().map(|p| format!("{p:?}")).collect();
        for p in &exhaustive {
            if !staged_set.contains(&format!("{p:?}")) {
                prop_assert!(
                    p.report.latency_s > limit,
                    "{} pruned but inside the latency window",
                    p.hw
                );
            }
        }
        for objective in [
            DseObjective::MinArea,
            DseObjective::MinLatency,
            DseObjective::MinEnergyDelayProduct,
        ] {
            let a = custom_config_with_engine(&model, &space, &cons, objective, &staged_engine);
            let b = custom_config_with_engine(
                &model, &space, &cons, objective, &exhaustive_engine,
            );
            prop_assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "objective {:?} diverged",
                objective
            );
        }
        // The screens accounted for every point of every staged sweep
        // (1 sweep + 3 selections), and never touched the exhaustive
        // engine.
        let stats = staged_engine.stats();
        prop_assert_eq!(
            stats.dse_pruned + stats.dse_lb_pruned + stats.dse_evaluated,
            4 * space.len() as u64
        );
        prop_assert_eq!(exhaustive_engine.stats().dse_pruned, 0);
        prop_assert_eq!(exhaustive_engine.stats().dse_lb_pruned, 0);
    }

    /// The three-objective Pareto front of a feasible sweep contains
    /// the windowed argmin of **every** objective, and selection from
    /// the front reproduces the sweep's winner bit-identically — one
    /// sweep answers all objective queries.
    #[test]
    fn pareto_front_reproduces_every_objective_winner(
        s in steps(),
        space in random_space(),
        cons in random_constraints(),
    ) {
        use claire::core::dse::{sweep_with_engine, DseObjective};
        use claire::core::{Engine, ParetoFront};
        let model = materialize(&s);
        let points =
            sweep_with_engine(&model, &space, &cons, &Engine::serial().with_pruning(false));
        let front = ParetoFront::from_points(&points);
        prop_assert!(front.len() <= points.len());
        let best_latency = points
            .iter()
            .map(|p| p.report.latency_s)
            .fold(f64::INFINITY, f64::min);
        for objective in [
            DseObjective::MinArea,
            DseObjective::MinLatency,
            DseObjective::MinEnergyDelayProduct,
        ] {
            // The historical full-list fold: window, then first-tie
            // argmin.
            let limit = best_latency * (1.0 + cons.latency_slack);
            let reference = points
                .iter()
                .filter(|p| p.report.latency_s <= limit)
                .min_by(|a, b| {
                    objective
                        .score(&a.report)
                        .total_cmp(&objective.score(&b.report))
                });
            let got = front.select(&cons, objective);
            prop_assert_eq!(
                format!("{got:?}"),
                format!("{reference:?}"),
                "objective {:?} diverged on the front",
                objective
            );
        }
    }

    /// Successive halving with `budget ≥ |space|` never samples: its
    /// exactly priced point set, front, and selections are
    /// bit-identical to the exhaustive policy on random small spaces.
    #[test]
    fn full_budget_successive_halving_degenerates_to_exhaustive(
        s in steps(),
        space in random_space(),
        cons in random_constraints(),
        seed in 0u64..u64::MAX,
    ) {
        use claire::core::dse::DseObjective;
        use claire::core::{search_with_engine, Engine, SearchPolicy};
        let model = materialize(&s);
        let policy = SearchPolicy::SuccessiveHalving {
            seed,
            eta: 2,
            budget: space.len(),
        };
        let sh = search_with_engine(&model, &space, &cons, policy, &Engine::serial());
        let ex = search_with_engine(
            &model,
            &space,
            &cons,
            SearchPolicy::Exhaustive,
            &Engine::serial(),
        );
        prop_assert!(!sh.sampled);
        prop_assert_eq!(format!("{:?}", sh.points), format!("{:?}", ex.points));
        prop_assert_eq!(
            format!("{:?}", sh.front.entries()),
            format!("{:?}", ex.front.entries())
        );
        for objective in [
            DseObjective::MinArea,
            DseObjective::MinLatency,
            DseObjective::MinEnergyDelayProduct,
        ] {
            prop_assert_eq!(
                format!("{:?}", sh.front.select(&cons, objective)),
                format!("{:?}", ex.front.select(&cons, objective))
            );
        }
    }
}

// ---------- parser robustness ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic, whatever bytes arrive — it either
    /// produces a model or a structured error.
    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,400}") {
        let _ = parse_model("fuzz", &text, ParseOptions::default());
    }

    /// Line-noise around a valid layer still parses that layer.
    #[test]
    fn parser_tolerates_surrounding_noise(noise in "[a-zA-Z0-9 _.,:;#]{0,60}") {
        let dump = format!(
            "Net(\n  {noise}\n  (fc): Linear(in_features=8, out_features=4, bias=True)\n)"
        );
        if let Ok(m) = parse_model("noisy", &dump, ParseOptions::default()) {
            prop_assert!(m.layer_count() >= 1);
        }
    }
}

// ---------- transfer-cost invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transfer_cost_physical_invariants(s in steps(), bytes in 1u64..10_000_000) {
        use claire::core::evaluate::edge_transfer;
        let model = materialize(&s);
        let claire = Claire::new(ClaireOptions::default());
        let custom = claire.custom_for(&model).expect("feasible");
        let cfg = &custom.config;
        let classes: Vec<_> = cfg.classes.iter().copied().collect();
        for &a in &classes {
            for &b in &classes {
                let t = edge_transfer(cfg, a, b, bytes);
                if a == b {
                    prop_assert_eq!(t.ser_cycles + t.fixed_cycles, 0);
                    continue;
                }
                // Latency and energy are non-negative and monotone in
                // payload size.
                let bigger = edge_transfer(cfg, a, b, bytes + 40);
                prop_assert!(bigger.latency_s() >= t.latency_s());
                prop_assert!(bigger.noc_pj() + bigger.nop_pj() >= t.noc_pj() + t.nop_pj());
                // Cross-chiplet transfers pay NoP energy; local ones don't.
                prop_assert_eq!(t.nop_pj() > 0.0, t.crosses_chiplet);
                // Symmetric classes, symmetric cost (undirected fabric).
                let rev = edge_transfer(cfg, b, a, bytes);
                prop_assert_eq!(t.ser_cycles, rev.ser_cycles);
                prop_assert_eq!(t.fixed_cycles, rev.fixed_cycles);
            }
        }
    }
}

// ---------- certified Louvain warm-start ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The γ-interval certificate is sound: any resolution strictly
    /// inside the certified interval reproduces the certified run's
    /// pass sequence — and therefore its final partition —
    /// bit-for-bit. This is the invariant the engine's Louvain
    /// warm-start tier rests on when a chiplet-count escalation
    /// serves `1.5γ` from the partition certified at `γ`.
    #[test]
    fn gamma_certificate_reproduces_passes(
        g in small_graph(),
        res in 0.25f64..4.0,
        frac in 0.05f64..0.95,
    ) {
        let csr = CsrGraph::from_weighted(&g);
        let (passes, cert) = louvain_csr_passes_certified(&csr, res);
        // Certification is observational: the certified run itself is
        // bit-identical to the plain kernel, pass by pass.
        prop_assert_eq!(&passes, &louvain_csr_passes(&csr, res));
        let (partition, _, cert2) = louvain_csr_certified(&csr, res);
        prop_assert_eq!(&partition, passes.last().unwrap());
        prop_assert_eq!((cert2.lo(), cert2.hi()), (cert.lo(), cert.hi()));
        // A non-collapsed certificate always covers the resolution it
        // was recorded at.
        if !cert.is_empty() {
            prop_assert!(
                cert.contains(res),
                "certificate ({}, {}) excludes its own resolution {res}",
                cert.lo(), cert.hi()
            );
        }
        // Probe a different resolution strictly inside the interval:
        // the warm-start tier would serve the stored partition there,
        // so the cold run at the probe must match pass-for-pass.
        let probe = if cert.hi().is_finite() {
            cert.lo() + (cert.hi() - cert.lo()) * frac
        } else {
            res * (1.0 + frac)
        };
        prop_assume!(cert.contains(probe) && probe > 0.0);
        prop_assert_eq!(
            &louvain_csr_passes(&csr, probe),
            &passes,
            "probe {} inside certificate ({}, {}) diverged from the run at {}",
            probe, cert.lo(), cert.hi(), res
        );
    }
}

// ---------- bucketed edge-cost sequences ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The aggregated per-`(route, bytes)` bucket costing behind the
    /// engine's communication memo tier is bit-equal to the
    /// evaluator's per-class-pair `route_of` walk, edge for edge in
    /// execution order — and so are the latency/energy folds over the
    /// sequence.
    #[test]
    fn edge_cost_sequence_matches_per_edge_walk(s in steps()) {
        let model = materialize(&s);
        let claire = Claire::new(ClaireOptions::default());
        // Both topologies the flow evaluates: the clustered custom
        // configuration (multi-chiplet, NoP crossings) and the
        // monolithic shell (NoC only).
        let custom = claire.custom_for(&model).expect("feasible");
        let classes = model.op_class_counts().into_keys().collect();
        let mono = DesignConfig::monolithic("mono", HwParams::new(32, 32, 16, 16), classes);
        for cfg in [&custom.config, &mono] {
            let routes = RouteTable::new();
            let seq = edge_cost_sequence(&model, cfg, &routes).expect("covered");
            let mut walk = Vec::new();
            for (a, b, bytes) in model.edges() {
                let ea = cfg.executing_class(a).expect("covered");
                let eb = cfg.executing_class(b).expect("covered");
                if ea == eb {
                    continue;
                }
                walk.push(transfer_on_route(route_of(cfg, ea, eb), bytes));
            }
            prop_assert_eq!(&seq, &walk, "{} sequence diverged", cfg.name);
            let fold = |ts: &[TransferCost]| {
                let (mut lat, mut noc, mut nop) = (0.0f64, 0.0f64, 0.0f64);
                for t in ts {
                    lat += t.latency_s();
                    noc += t.noc_pj();
                    nop += t.nop_pj();
                }
                (lat.to_bits(), noc.to_bits(), nop.to_bits())
            };
            prop_assert_eq!(fold(&seq), fold(&walk));
        }
    }
}

// ---------- serve observability: exact quantile digests ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The serve digest is exact, not approximate: after every single
    /// insertion, p50/p90/p99/max equal the nearest-rank-lower
    /// quantiles of a sorted copy of everything recorded so far.
    #[test]
    fn quantile_digest_matches_sorted_reference_at_every_size(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        use claire::core::QuantileDigest;
        let mut digest = QuantileDigest::new();
        let mut sorted: Vec<u64> = Vec::new();
        for &v in &samples {
            digest.record(v);
            let at = sorted.partition_point(|&x| x <= v);
            sorted.insert(at, v);
            let n = sorted.len() as u64;
            prop_assert_eq!(digest.count(), n);
            for p in [50u8, 90, 99] {
                let rank = ((u128::from(n - 1) * u128::from(p)) / 100) as usize;
                prop_assert_eq!(
                    digest.quantile(p),
                    Some(sorted[rank]),
                    "p{} diverged at size {}",
                    p,
                    n
                );
            }
            prop_assert_eq!(digest.max(), sorted.last().copied());
            let s = digest.summary();
            prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        }
    }

    /// Merging per-thread digests is order-independent: every
    /// permutation of the parts yields a digest — and a wire summary —
    /// byte-identical to recording the samples into one digest, so a
    /// multi-threaded serve reports the same quantiles at any thread
    /// count.
    #[test]
    fn quantile_digest_merge_is_permutation_invariant(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..u64::MAX, 0..60),
            1..5,
        ),
    ) {
        use claire::core::QuantileDigest;
        let flat = {
            let mut d = QuantileDigest::new();
            for part in &parts {
                for &v in part {
                    d.record(v);
                }
            }
            d
        };
        let digests: Vec<QuantileDigest> = parts
            .iter()
            .map(|part| {
                let mut d = QuantileDigest::new();
                for &v in part {
                    d.record(v);
                }
                d
            })
            .collect();
        // Forward, reverse, and middle-out merge orders all reproduce
        // the flat digest exactly (Eq covers the full RLE run list).
        let orders: Vec<Vec<usize>> = vec![
            (0..digests.len()).collect(),
            (0..digests.len()).rev().collect(),
            {
                let mut order: Vec<usize> = (0..digests.len()).step_by(2).collect();
                order.extend((1..digests.len()).step_by(2));
                order
            },
        ];
        for order in orders {
            let mut merged = QuantileDigest::new();
            for i in order {
                merged.merge(&digests[i]);
            }
            prop_assert_eq!(&merged, &flat);
            prop_assert_eq!(
                serde_json::to_string(&merged.summary().to_value()).expect("render"),
                serde_json::to_string(&flat.summary().to_value()).expect("render")
            );
        }
    }
}

// ---------- hardware/cost models ----------

proptest! {
    #[test]
    fn unit_area_monotone_in_resources(
        sa in prop_oneof![Just(16u32), Just(32), Just(64)],
        n1 in 1u32..64, n2 in 1u32..64,
    ) {
        prop_assume!(n1 < n2);
        let small = HwParams::new(sa, n1, 8, 8);
        let big = HwParams::new(sa, n2, 8, 8);
        for class in claire::model::OpClass::all() {
            prop_assert!(
                unit_area_mm2(class, &big) >= unit_area_mm2(class, &small),
                "{class}"
            );
        }
    }

    #[test]
    fn torus_hops_bounded_by_half_perimeter(cols in 1u32..9, rows in 1u32..9) {
        let t = Torus2d::new(cols, rows);
        let bound = cols / 2 + rows / 2;
        for a in 0..t.size() {
            for b in 0..t.size() {
                prop_assert!(t.hops(a, b) <= bound);
            }
        }
    }

    #[test]
    fn network_latency_monotone(bytes in 1u64..1_000_000, hops in 0u32..8) {
        for n in [Network::noc(), Network::nop_aib2()] {
            prop_assert!(n.latency_s(bytes + 40, hops) >= n.latency_s(bytes, hops));
            prop_assert!(n.latency_s(bytes, hops + 1) > n.latency_s(bytes, hops));
        }
    }

    #[test]
    fn nre_monotone_in_chiplet_count(areas in proptest::collection::vec(5.0f64..80.0, 1..6)) {
        let m = NreModel::tsmc28();
        let mut bigger = areas.clone();
        bigger.push(20.0);
        prop_assert!(m.system_nre(&bigger) > m.system_nre(&areas));
    }

    #[test]
    fn yield_and_die_cost_behave(area in 1.0f64..700.0) {
        let m = RecurringModel::tsmc28();
        let y = m.yield_fraction(area);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!(m.good_die_cost(area) > 0.0);
        // Yield strictly decreases with area.
        prop_assert!(m.yield_fraction(area + 10.0) < y);
    }
}
