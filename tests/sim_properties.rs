//! Property tests for the discrete-event simulator: strict mode must
//! agree with the analytical model on *arbitrary* shape-consistent
//! workloads, not just the built-in zoo; overlapped mode and batch
//! pipelining must respect their ordering invariants.

use claire::core::evaluate::evaluate;
use claire::core::{Claire, ClaireOptions};
use claire::model::synth::{random_model, Family};
use claire::sim::{pipelined_throughput, simulate, simulate_batch, Mode};
use proptest::prelude::*;

fn family() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::Cnn),
        Just(Family::Transformer),
        Just(Family::Audio)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strict_simulation_matches_analytical(seed in 0u64..5_000, fam in family()) {
        let model = random_model(seed, fam);
        let claire = Claire::new(ClaireOptions::default());
        let custom = claire.custom_for(&model).expect("feasible");
        let sim = simulate(&model, &custom.config, Mode::Strict).expect("covered");
        let analytical = evaluate(&model, &custom.config).expect("covered");
        let rel = (sim.latency_s() - analytical.latency_s).abs() / analytical.latency_s;
        prop_assert!(rel < 1e-9, "{}: {rel}", model.name());
    }

    #[test]
    fn overlap_never_slower_than_strict(seed in 0u64..5_000, fam in family()) {
        let model = random_model(seed, fam);
        let claire = Claire::new(ClaireOptions::default());
        let custom = claire.custom_for(&model).expect("feasible");
        let strict = simulate(&model, &custom.config, Mode::Strict).expect("covered");
        let overlapped = simulate(&model, &custom.config, Mode::Overlapped).expect("covered");
        prop_assert!(overlapped.cycles <= strict.cycles);
    }

    #[test]
    fn batching_is_subadditive_and_monotone(seed in 0u64..2_000, fam in family()) {
        let model = random_model(seed, fam);
        let claire = Claire::new(ClaireOptions::default());
        let custom = claire.custom_for(&model).expect("feasible");
        let b1 = simulate_batch(&model, &custom.config, 1).expect("covered");
        let b4 = simulate_batch(&model, &custom.config, 4).expect("covered");
        let b8 = simulate_batch(&model, &custom.config, 8).expect("covered");
        prop_assert!(b4 <= 4 * b1);
        prop_assert!(b8 >= b4, "batch makespan must grow");
        // Ideal throughput bound holds.
        let ideal = pipelined_throughput(&model, &custom.config).expect("covered");
        let achieved = 8.0 / (b8 as f64 / claire::ppa::tech28::CLOCK_HZ);
        prop_assert!(achieved <= ideal * 1.001, "{achieved} > {ideal}");
    }
}
