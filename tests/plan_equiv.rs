//! Equivalence suite for the flat execution plan: the planned flow
//! (one up-front item set through a single load-balanced parallel
//! map, selections replayed from the evaluation table) must produce
//! results **bit-identical** to the legacy recursive flow (per-model
//! staged sweeps) — at every thread count, cache on or off, fail-fast
//! or degrade. Comparisons go through `format!("{:?}")`, which prints
//! `f64` exactly, so two equal strings mean two bit-equal result
//! sets.
//!
//! The legacy flow stays in the tree behind
//! `ClaireOptions::legacy_flow` (CLI: `--legacy-flow`) precisely to
//! serve as this suite's oracle.

use claire::core::{
    Claire, ClaireOptions, Constraints, Engine, RobustnessPolicy, SubsetStrategy, WeightScale,
};
use claire::model::zoo;

/// Thread counts the suite sweeps: the serial edge case, a small
/// pool, and more workers than this container has cores.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn planned() -> ClaireOptions {
    ClaireOptions::default()
}

fn legacy() -> ClaireOptions {
    ClaireOptions {
        legacy_flow: true,
        ..ClaireOptions::default()
    }
}

/// Full train + test fingerprint of one flow run. The model slices
/// are shared across runs so process-global instance ids (which the
/// Debug rendering includes) cancel out of the comparison.
fn run_fingerprint(
    opts: ClaireOptions,
    training: &[claire::model::Model],
    tests: &[claire::model::Model],
    engine: &Engine,
) -> String {
    let claire = Claire::new(opts);
    let train = claire.train_with_engine(training, engine).unwrap();
    let test = claire
        .evaluate_test_with_engine(&train, tests, engine)
        .unwrap();
    format!("{train:?}\n{test:?}")
}

#[test]
fn planned_flow_equals_legacy_flow_bit_for_bit() {
    let training = [
        zoo::resnet18(),
        zoo::alexnet(),
        zoo::bert_base(),
        zoo::vgg16(),
    ];
    let tests = [zoo::resnet50(), zoo::vit_base()];
    let reference = run_fingerprint(
        legacy(),
        &training,
        &tests,
        &Engine::serial().with_cache(false),
    );
    for threads in THREAD_COUNTS {
        for cache in [false, true] {
            let engine = Engine::new(threads).with_cache(cache);
            let got = run_fingerprint(planned(), &training, &tests, &engine);
            assert_eq!(
                got, reference,
                "planned flow diverged from the legacy oracle at {threads} thread(s), \
                 cache {cache}"
            );
            let legacy_engine = Engine::new(threads).with_cache(cache);
            let legacy_got = run_fingerprint(legacy(), &training, &tests, &legacy_engine);
            assert_eq!(
                legacy_got, reference,
                "legacy flow self-diverged at {threads} thread(s), cache {cache}"
            );
        }
    }
}

#[test]
fn planned_flow_equals_legacy_flow_with_jaccard_subsets() {
    // A training set chosen so agglomeration forms several
    // multi-member subsets, so the library stage's table replay (set
    // screen ⊆ member screens, member-order early-exit totals) is
    // exercised on non-singleton member lists too.
    let opts = |legacy_flow| ClaireOptions {
        subsets: SubsetStrategy::WeightedJaccard {
            threshold: 0.6,
            scale: WeightScale::Log,
        },
        legacy_flow,
        ..ClaireOptions::default()
    };
    let training = [
        zoo::resnet18(),
        zoo::resnet50(),
        zoo::mobilenet_v2(),
        zoo::bert_base(),
        zoo::vit_base(),
        zoo::gpt2(),
    ];
    let reference = format!(
        "{:?}",
        Claire::new(opts(true))
            .train_with_engine(&training, &Engine::serial().with_cache(false))
            .unwrap()
    );
    for threads in THREAD_COUNTS {
        for cache in [false, true] {
            let engine = Engine::new(threads).with_cache(cache);
            let got = format!(
                "{:?}",
                Claire::new(opts(false))
                    .train_with_engine(&training, &engine)
                    .unwrap()
            );
            assert_eq!(
                got, reference,
                "planned library synthesis diverged from the legacy oracle at \
                 {threads} thread(s), cache {cache}"
            );
        }
    }
}

#[test]
fn planned_flow_equals_legacy_flow_under_degrade() {
    // An impossible chiplet-area budget forces every stage down the
    // constraint-relaxation ladder: rung 0 replays from the plan
    // table, the relaxed rungs fall back to the legacy recursive
    // sweep — and the outputs must still match the all-legacy oracle
    // bit for bit.
    let tight = Constraints {
        chiplet_area_limit_mm2: 0.5,
        ..Constraints::default()
    };
    let opts = |legacy_flow| ClaireOptions {
        constraints: tight,
        policy: RobustnessPolicy::Degrade,
        legacy_flow,
        ..ClaireOptions::default()
    };
    let claire_legacy = Claire::new(opts(true));
    let claire_planned = Claire::new(opts(false));
    let training = [zoo::resnet18(), zoo::alexnet()];
    let tests = [zoo::vgg16()];

    let oracle = Engine::serial().with_cache(false);
    let train_ref = claire_legacy.train_with_engine(&training, &oracle).unwrap();
    assert!(train_ref.is_degraded(), "scenario must actually degrade");
    let test_ref = claire_legacy
        .evaluate_test_with_engine(&train_ref, &tests, &oracle)
        .unwrap();
    let reference = format!("{train_ref:?}\n{test_ref:?}");

    for threads in THREAD_COUNTS {
        for cache in [false, true] {
            let engine = Engine::new(threads).with_cache(cache);
            let train = claire_planned
                .train_with_engine(&training, &engine)
                .unwrap();
            let test = claire_planned
                .evaluate_test_with_engine(&train, &tests, &engine)
                .unwrap();
            assert_eq!(
                format!("{train:?}\n{test:?}"),
                reference,
                "degraded planned flow diverged from the legacy oracle at \
                 {threads} thread(s), cache {cache}"
            );
        }
    }
}

#[test]
fn plan_memo_tiers_see_traffic() {
    // The three plan-level coarse memo tiers must all carry traffic
    // on a planned multi-model flow: the comm tier serves every
    // repeated (structure, topology) edge-cost sequence, the merged
    // member-graph path gives the graph tier its first cold hits
    // (member graphs cached by the customs stage are reused by the
    // generic build), and the Louvain tiers serve every repeated
    // clustering — the exact tier absorbs repeat-γ requests (its
    // hash probe is consulted before the warm certificate scan), the
    // warm tier backs it up for distinct resolutions inside a
    // certified interval.
    let engine = Engine::new(2);
    let claire = Claire::new(planned());
    let training = [zoo::resnet18(), zoo::alexnet(), zoo::bert_base()];
    let train = claire.train_with_engine(&training, &engine).unwrap();
    let tests = [zoo::vgg16()];
    claire
        .evaluate_test_with_engine(&train, &tests, &engine)
        .unwrap();
    let stats = engine.stats();
    assert!(stats.plan_items > 0, "no plan items enumerated: {stats:?}");
    assert!(
        stats.comm_hits > 0 && stats.comm_misses > 0,
        "comm tier saw no traffic: {stats:?}"
    );
    assert!(
        stats.louvain_warm_hits + stats.louvain_warm_misses > 0,
        "louvain warm tier never consulted: {stats:?}"
    );
    assert!(
        stats.louvain_hits > 0,
        "louvain tiers consulted but repeated clusterings never hit \
         the exact tier — repeat-\u{3b3} requests are re-deriving: {stats:?}"
    );
    assert!(
        stats.merged_graph_builds > 0,
        "no multi-member graph assembled from cached members: {stats:?}"
    );
    assert!(
        stats.graph_hits > 0,
        "graph tier's cold hit rate is still zero: {stats:?}"
    );
    assert!(
        stats.stages.iter().any(|(name, _)| name == "plan"),
        "plan stage not timed: {stats:?}"
    );
}

#[test]
fn legacy_flag_actually_routes_to_the_recursive_flow() {
    let engine = Engine::new(2);
    Claire::new(legacy())
        .train_with_engine(&[zoo::resnet18(), zoo::alexnet()], &engine)
        .unwrap();
    let stats = engine.stats();
    assert_eq!(
        stats.plan_items, 0,
        "legacy flow must not enumerate plan items: {stats:?}"
    );
    assert!(
        !stats.stages.iter().any(|(name, _)| name == "plan"),
        "legacy flow must not run a plan stage: {stats:?}"
    );
}
