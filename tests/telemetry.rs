//! Integration suite for the unified telemetry layer (PR 5).
//!
//! Pins the three contracts the observability tentpole makes:
//!
//! 1. **Bit-identical outputs.** Telemetry is purely observational —
//!    enabling tracing must not perturb a single bit of any pipeline
//!    result, at any thread count. Comparisons go through
//!    `format!("{:?}")`, which round-trips `f64` exactly.
//! 2. **Counters are the single source of truth.** `EngineStats` is a
//!    read-only view over the telemetry counters, so the two must
//!    reconcile *exactly* — not approximately — after any workload.
//! 3. **Chrome-trace validity.** The exported JSON reparses, events
//!    carry consistent pid/tid, every traced thread has a
//!    `thread_name` metadata record, all six flow stages appear as
//!    spans, and spans on each thread nest (stack discipline).

use std::time::Duration;

use claire::core::fault::{FaultClass, FaultPlan};
use claire::core::telemetry::Metric;
use claire::core::{Claire, ClaireOptions, Engine, RobustnessPolicy, TelemetryOptions};
use claire::model::zoo;
use serde_json::Value;

/// Thread counts the suite sweeps: the serial edge case, a small
/// pool, and more workers than this container has cores.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs the full six-stage paper flow (train + test) over the given
/// model sets on `engine` and returns the Debug rendering of both
/// outputs. Callers reuse one model set across runs so process-global
/// `instance_id` allocation cannot masquerade as a divergence.
fn flow_fingerprint(
    engine: &Engine,
    training: &[claire::model::Model],
    tests: &[claire::model::Model],
) -> String {
    let claire = Claire::new(ClaireOptions::default());
    let train = claire
        .train_with_engine(training, engine)
        .expect("training phase");
    let test = claire
        .evaluate_test_with_engine(&train, tests, engine)
        .expect("test phase");
    format!("{train:?}\n{test:?}")
}

/// [`flow_fingerprint`] over the full paper zoo.
fn paper_flow(engine: &Engine) -> String {
    flow_fingerprint(engine, &zoo::training_set(), &zoo::test_set())
}

#[test]
fn outputs_are_bit_identical_with_tracing_on() {
    let training = zoo::training_set();
    let tests = zoo::test_set();
    for threads in THREAD_COUNTS {
        let plain = flow_fingerprint(&Engine::new(threads), &training, &tests);
        let traced = flow_fingerprint(&Engine::new(threads).with_tracing(true), &training, &tests);
        assert_eq!(
            plain, traced,
            "tracing perturbed pipeline output at {threads} thread(s)"
        );
    }
}

#[test]
fn engine_stats_reconcile_exactly_with_counters() {
    for threads in [1, 4] {
        let engine = Engine::new(threads);
        paper_flow(&engine);
        let stats = engine.stats();
        let tel = engine.telemetry();
        let pairs: [(&str, u64, Metric); 12] = [
            ("cache_hits", stats.cache_hits, Metric::LayerHit),
            ("cache_misses", stats.cache_misses, Metric::LayerMiss),
            ("route_hits", stats.route_hits, Metric::RouteHit),
            ("route_misses", stats.route_misses, Metric::RouteMiss),
            ("sum_hits", stats.sum_hits, Metric::SumHit),
            ("sum_misses", stats.sum_misses, Metric::SumMiss),
            ("louvain_hits", stats.louvain_hits, Metric::LouvainHit),
            ("louvain_misses", stats.louvain_misses, Metric::LouvainMiss),
            ("graph_hits", stats.graph_hits, Metric::GraphHit),
            ("graph_misses", stats.graph_misses, Metric::GraphMiss),
            ("area_hits", stats.area_hits, Metric::AreaHit),
            ("area_misses", stats.area_misses, Metric::AreaMiss),
        ];
        for (field, legacy, metric) in pairs {
            assert_eq!(
                legacy,
                tel.counter(metric),
                "{threads} thread(s): EngineStats.{field} diverged from {}",
                metric.name()
            );
        }
        assert_eq!(stats.dse_pruned, tel.counter(Metric::DsePruned));
        assert_eq!(stats.dse_evaluated, tel.counter(Metric::DseEvaluated));
        // The flow exercises every memo tier, so the reconciliation
        // above compared live values, not a wall of zeros.
        assert!(stats.cache_hits > 0, "flow should hit the layer cache");
        assert!(stats.dse_evaluated > 0, "flow should evaluate DSE points");
    }
}

#[test]
fn stage_aggregates_match_engine_stats_stages() {
    let engine = Engine::new(2);
    paper_flow(&engine);
    let stats = engine.stats();
    let agg = engine.telemetry().stage_aggregates();
    assert_eq!(
        stats.stages, agg,
        "EngineStats.stages must be the telemetry stage aggregates"
    );
    let names: Vec<&str> = agg.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "plan",
            "customs",
            "generic",
            "subsets",
            "libraries",
            "algo_ppa",
            "test"
        ],
        "the flat-plan stage plus the six flow stages, in execution order"
    );
}

/// Floored-microsecond rounding slack for span boundary comparisons:
/// `ts` and `dur` are floored independently, so a child's floored end
/// can exceed its parent's floored end by up to 2 µs.
const SLACK_US: i64 = 2;

#[test]
fn chrome_trace_is_schema_valid() {
    let engine = Engine::new(2).with_tracing(true);
    paper_flow(&engine);
    let json = serde_json::to_string(&engine.telemetry().chrome_trace()).expect("serialise");
    let parsed: Value = serde_json::from_str(&json).expect("trace JSON must reparse");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    let mut named_tids = Vec::new();
    let mut span_tids = Vec::new();
    let mut stage_names = Vec::new();
    // (tid, ts, end) per complete event, for the nesting check.
    let mut spans: Vec<(i64, i64, i64)> = Vec::new();
    for ev in events {
        let ph = ev["ph"].as_str().expect("every event has ph");
        assert_eq!(ev["pid"].as_u64(), Some(1), "single-process trace");
        let tid = ev["tid"].as_u64().expect("every event has tid") as i64;
        match ph {
            "M" => {
                if ev["name"].as_str() == Some("thread_name") {
                    named_tids.push(tid);
                }
            }
            "X" => {
                let name = ev["name"].as_str().expect("complete events are named");
                let ts = ev["ts"].as_u64().expect("integer ts") as i64;
                let dur = ev["dur"].as_u64().expect("integer dur") as i64;
                span_tids.push(tid);
                spans.push((tid, ts, ts + dur));
                if let Some(stage) = name.strip_prefix("stage.") {
                    assert_eq!(tid, 0, "stage spans live on the main track");
                    stage_names.push(stage.to_owned());
                }
            }
            "i" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for stage in [
        "customs",
        "generic",
        "subsets",
        "libraries",
        "algo_ppa",
        "test",
    ] {
        assert!(
            stage_names.iter().any(|s| s == stage),
            "missing stage span {stage:?}"
        );
    }
    for tid in &span_tids {
        assert!(
            named_tids.contains(tid),
            "tid {tid} has spans but no thread_name metadata"
        );
    }
    // Stack discipline per thread: any two spans on the same tid are
    // either nested or disjoint (modulo floored-µs rounding slack).
    for (i, &(tid_a, s_a, e_a)) in spans.iter().enumerate() {
        for &(tid_b, s_b, e_b) in &spans[i + 1..] {
            if tid_a != tid_b {
                continue;
            }
            let disjoint = e_a <= s_b + SLACK_US || e_b <= s_a + SLACK_US;
            let a_in_b = s_a >= s_b - SLACK_US && e_a <= e_b + SLACK_US;
            let b_in_a = s_b >= s_a - SLACK_US && e_b <= e_a + SLACK_US;
            assert!(
                disjoint || a_in_b || b_in_a,
                "tid {tid_a}: spans [{s_a},{e_a}] and [{s_b},{e_b}] partially overlap"
            );
        }
    }
}

#[test]
fn tracing_disabled_records_no_span_events() {
    let engine = Engine::new(2);
    paper_flow(&engine);
    let trace = engine.telemetry().chrome_trace();
    let events = trace["traceEvents"].as_array().expect("traceEvents");
    let spans = events
        .iter()
        .filter(|e| matches!(e["ph"].as_str(), Some("X") | Some("i")))
        .count();
    assert_eq!(spans, 0, "disabled tracing must record no span events");
}

#[test]
fn worker_busy_never_exceeds_wall() {
    let engine = Engine::new(4);
    paper_flow(&engine);
    let util = engine.telemetry().worker_utilization();
    assert!(!util.is_empty(), "parallel flow must record worker samples");
    for w in util {
        assert!(
            w.busy <= w.wall + Duration::from_micros(1),
            "worker {}: busy {:?} exceeds wall {:?}",
            w.worker,
            w.busy,
            w.wall
        );
        let u = w.utilization();
        assert!(
            (0.0..=1.0).contains(&u),
            "worker {}: utilization {u}",
            w.worker
        );
    }
}

#[test]
fn degrade_ladder_lands_in_rung_histogram() {
    let plan = FaultPlan::new(11).with(FaultClass::InfeasibleConstraints, 1.0);
    let engine = Engine::new(2).with_faults(plan);
    let opts = ClaireOptions {
        policy: RobustnessPolicy::Degrade,
        ..Default::default()
    };
    let out = Claire::new(opts)
        .custom_for_with_engine(&zoo::alexnet(), &engine)
        .expect("degrade mode walks the relaxation ladder");
    assert!(out.degradation.is_some());
    let tel = engine.telemetry();
    assert!(
        tel.counter(Metric::DegradeAttempts) > 0,
        "relaxed retries must be counted"
    );
    assert!(
        tel.counter(Metric::DegradeSuccesses) > 0,
        "relaxed success must be counted"
    );
    let rungs = tel.degrade_rungs().snapshot();
    let relaxed: u64 = rungs.iter().skip(1).sum();
    assert!(relaxed > 0, "winning rung > 0 must land in the histogram");
    assert!(
        tel.counter(Metric::FaultInfeasibleConstraints) > 0,
        "fault trigger sites must count their class"
    );
}

#[test]
fn worker_panic_faults_are_counted() {
    let plan = FaultPlan::new(7).with(FaultClass::WorkerPanic, 1.0);
    let engine = Engine::new(2).with_faults(plan);
    let claire = Claire::new(ClaireOptions::default());
    claire
        .train_with_engine(&[zoo::alexnet(), zoo::resnet18()], &engine)
        .expect_err("panicking workers must not produce a result");
    let tel = engine.telemetry();
    assert!(tel.counter(Metric::FaultWorkerPanic) > 0);
    assert!(tel.counter(Metric::ParPanics) > 0);
}

#[test]
fn facade_exports_trace_and_metrics_files() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let trace_path = dir.join(format!("claire_tel_trace_{pid}.json"));
    let metrics_path = dir.join(format!("claire_tel_metrics_{pid}.json"));
    let opts = ClaireOptions {
        telemetry: TelemetryOptions {
            trace_out: Some(trace_path.clone()),
            metrics_out: Some(metrics_path.clone()),
        },
        ..Default::default()
    };
    Claire::new(opts)
        .train(&[zoo::alexnet(), zoo::resnet18()])
        .expect("training phase");

    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let trace: Value = serde_json::from_str(&trace_text).expect("trace reparses");
    let events = trace["traceEvents"].as_array().expect("traceEvents");
    assert!(events
        .iter()
        .any(|e| e["name"].as_str() == Some("stage.customs")));

    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let metrics: Value = serde_json::from_str(&metrics_text).expect("metrics reparses");
    for key in [
        "counters",
        "gauges",
        "histograms",
        "stages",
        "worker_utilization",
    ] {
        assert!(metrics.get(key).is_some(), "metrics JSON missing {key:?}");
    }

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
}
