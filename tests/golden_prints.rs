//! Golden-asset tests: real torchvision `print(model)` dumps (checked
//! into `assets/`) parse into models whose inventories and parameter
//! counts agree with the published architectures — the end-to-end
//! ingestion path the paper describes, against genuine input text —
//! plus golden stdout fixtures pinning all six paper tables
//! (`tests/golden/table{1..6}.txt`). Regenerate the fixtures with
//! `GOLDEN_BLESS=1 cargo test --test golden_prints`.

use claire::core::{Claire, ClaireOptions};
use claire::model::parse::{parse_model, ParseOptions};
use claire::model::{zoo, ActivationKind, OpClass, PoolingKind};

fn asset(name: &str) -> String {
    let path = format!("{}/assets/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn torchvision_alexnet_dump_parses_exactly() {
    let m = parse_model(
        "Alexnet",
        &asset("alexnet_print.txt"),
        ParseOptions::default(),
    )
    .unwrap();
    // 5 convs + 7 ReLU + 3 maxpool + 1 adaptive pool + 3 linear.
    let c = m.op_class_counts();
    assert_eq!(c[&OpClass::Conv2d], 5);
    assert_eq!(c[&OpClass::Activation(ActivationKind::Relu)], 7);
    assert_eq!(c[&OpClass::Pooling(PoolingKind::MaxPool)], 3);
    assert_eq!(c[&OpClass::Pooling(PoolingKind::AdaptiveAvgPool)], 1);
    assert_eq!(c[&OpClass::Linear], 3);
    // Parameter count: 61.1 M (torchvision).
    let p = m.param_count() as f64 / 1e6;
    assert!((60.5..61.5).contains(&p), "{p}");
    // And the dump-derived model agrees with the hand-built zoo entry
    // on compute.
    let z = zoo::alexnet();
    let rel = (m.macs() as f64 - z.macs() as f64).abs() / z.macs() as f64;
    assert!(rel < 1e-9, "MACs diverge: {rel}");
}

#[test]
fn torchvision_resnet18_dump_parses_with_nested_blocks() {
    let m = parse_model(
        "Resnet18",
        &asset("resnet18_print.txt"),
        ParseOptions::default(),
    )
    .unwrap();
    let c = m.op_class_counts();
    // 20 convs (stem + 16 block convs + 3 downsample 1x1s).
    assert_eq!(c[&OpClass::Conv2d], 20);
    assert_eq!(c[&OpClass::Pooling(PoolingKind::MaxPool)], 1);
    assert_eq!(c[&OpClass::Linear], 1);
    // Nested module paths survive the lexer.
    assert!(m.layers().iter().any(|l| l.name == "layer2.0.downsample.0"));
    assert!(m.layers().iter().any(|l| l.name == "layer4.1.conv2"));
    // Weights: 11.69 M minus the BN parameters the extraction skips.
    let p = m.param_count() as f64 / 1e6;
    assert!((11.1..11.8).contains(&p), "{p}");
}

#[test]
fn torchvision_mobilenetv2_head_parses_depthwise_groups() {
    use claire::model::LayerKind;
    let m = parse_model(
        "MobileNetV2-head",
        &asset("mobilenetv2_print_head.txt"),
        ParseOptions::default(),
    )
    .unwrap();
    // Stem + (dw + project) + (expand + dw + project) = 6 convs, 4 ReLU6.
    let c = m.op_class_counts();
    assert_eq!(c[&OpClass::Conv2d], 6);
    assert_eq!(c[&OpClass::Activation(ActivationKind::Relu6)], 4);
    assert_eq!(c[&OpClass::Linear], 1);
    // Depthwise `groups=32` survives parsing and halves nothing:
    // 32*(1*3*3)+32 params.
    let dw = m
        .layers()
        .iter()
        .find(|l| l.name == "features.1.conv.0.0")
        .expect("depthwise conv path");
    match &dw.kind {
        LayerKind::Conv2d(conv) => {
            assert_eq!(conv.groups, 32);
            assert_eq!(conv.params(), 32 * 9 + 32);
            // 112x112 spatial after the stride-2 stem.
            assert_eq!(conv.ifm, (112, 112));
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Tables I–VI, rendered exactly as the `table1`..`table6` bench
/// binaries print them, must match the checked-in fixtures byte for
/// byte. Any change to the flow's numbers, orderings or formatting
/// shows up here as a diff against `tests/golden/`.
#[test]
fn tables_one_through_six_match_golden_fixtures() {
    let run = claire_bench::run_paper_flow();
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    let mut diffs = Vec::new();
    for (name, rendered) in claire_bench::tables::all_rendered(&run) {
        let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
        if bless {
            std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("{path}: {e}"));
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run with GOLDEN_BLESS=1 to create)"));
        if rendered != expected {
            diffs.push(format!(
                "{name} diverged from {path}:\n--- expected ---\n{expected}\n--- got ---\n{rendered}"
            ));
        }
    }
    assert!(diffs.is_empty(), "{}", diffs.join("\n\n"));
}

#[test]
fn parsed_dump_drives_the_full_dse_flow() {
    // The paper's pipeline end to end from real text: parse -> DSE ->
    // chiplets.
    let m = parse_model(
        "Alexnet",
        &asset("alexnet_print.txt"),
        ParseOptions::default(),
    )
    .unwrap();
    let claire = Claire::new(ClaireOptions::default());
    let custom = claire.custom_for(&m).expect("feasible");
    assert!(custom.config.covers(&m));
    assert!(custom.config.chiplet_count() >= 1);
    // Same silicon choice as the zoo-built AlexNet.
    let z = claire.custom_for(&zoo::alexnet()).expect("feasible");
    assert_eq!(custom.config.hw, z.config.hw);
}
